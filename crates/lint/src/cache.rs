//! Incremental analysis cache.
//!
//! Per-file facts are a pure function of the file's content (see
//! [`crate::analyze_source`]), so they can be reused across runs as long
//! as the content is unchanged. The cache keys each file by a [`Stamp`]:
//! an `(mtime, size)` fast path that avoids hashing untouched files, and
//! an FNV-1a content hash that survives `touch`/checkout mtime churn.
//! Graph construction and rule evaluation always run fresh — they are
//! cross-file and cheap compared to parsing.
//!
//! The on-disk format is line-based and versioned; any parse error or
//! version mismatch silently yields an empty cache (it is only ever an
//! optimization).

use std::collections::BTreeMap;
use std::path::Path;

use crate::dataflow::Interval;
use crate::facts::{Access, CallFact, Event, FnFacts};
use crate::lexer::FieldDef;
use crate::summary::{DeepFacts, FnDeep, FnSummary};
use crate::{FileAnalysis, Pragma};

const MAGIC: &str = "aurora-lint-cache v4";

/// Identity of one file's content at analysis time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Stamp {
    pub mtime_s: u64,
    pub mtime_ns: u32,
    pub size: u64,
    pub hash: u64,
}

impl Stamp {
    pub fn of(path: &Path, src: &str) -> Stamp {
        let (mtime_s, mtime_ns, size) = std::fs::metadata(path)
            .ok()
            .map(|m| {
                let t = m
                    .modified()
                    .ok()
                    .and_then(|t| t.duration_since(std::time::UNIX_EPOCH).ok())
                    .unwrap_or_default();
                (t.as_secs(), t.subsec_nanos(), m.len())
            })
            .unwrap_or_default();
        Stamp {
            mtime_s,
            mtime_ns,
            size,
            hash: crate::fnv1a64(src.as_bytes()),
        }
    }
}

#[derive(Default)]
pub struct Cache {
    /// Configuration/rule-set key (see [`crate::cache_key`]): entries
    /// recorded under a different key are invisible — editing lint.toml
    /// or upgrading the rule set forces a full re-scan.
    key: u64,
    entries: BTreeMap<String, (Stamp, FileAnalysis)>,
}

impl Cache {
    /// Load a cache file; any error, format mismatch, or key mismatch
    /// yields an empty cache (rewritten under `key` on save).
    pub fn load(path: &Path, key: u64) -> Cache {
        let mut cache = std::fs::read_to_string(path)
            .ok()
            .and_then(|text| parse(&text, key))
            .unwrap_or_default();
        cache.key = key;
        cache
    }

    /// Return the cached analysis for `rel` if its stamp still matches:
    /// same `(mtime, size)` (fast path), or same content hash (slow path —
    /// the stored mtime is refreshed so the fast path works next run).
    pub fn lookup(&mut self, rel: &str, stamp: &Stamp) -> Option<FileAnalysis> {
        let (cached, analysis) = self.entries.get_mut(rel)?;
        let fast = cached.mtime_s == stamp.mtime_s
            && cached.mtime_ns == stamp.mtime_ns
            && cached.size == stamp.size;
        if fast || cached.hash == stamp.hash {
            *cached = stamp.clone();
            return Some(analysis.clone());
        }
        None
    }

    pub fn insert(&mut self, rel: String, stamp: Stamp, analysis: FileAnalysis) {
        self.entries.insert(rel, (stamp, analysis));
    }

    /// Attach freshly computed deep (interprocedural) facts to `rel`'s
    /// entry. The deep phase runs after per-file analysis, so the entry
    /// normally exists; a miss just means this file won't have a warm
    /// deep cache next run.
    pub fn set_deep(&mut self, rel: &str, deep: DeepFacts) {
        if let Some((_, a)) = self.entries.get_mut(rel) {
            a.deep = Some(deep);
        }
    }

    /// Best-effort write; cache failures never fail the lint run.
    pub fn save(&self, path: &Path) {
        if let Some(dir) = path.parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        let _ = std::fs::write(path, render(self));
    }
}

// ------------------------------------------------------------ serialization

/// Percent-encode: spaces, '%', control characters. The empty string is a
/// lone "%" so every field occupies exactly one whitespace-split token.
fn enc(s: &str) -> String {
    if s.is_empty() {
        return "%".to_string();
    }
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        if c == ' ' || c == '%' || c.is_control() {
            let mut buf = [0u8; 4];
            for b in c.encode_utf8(&mut buf).bytes() {
                out.push_str(&format!("%{b:02x}"));
            }
        } else {
            out.push(c);
        }
    }
    out
}

fn dec(s: &str) -> String {
    if s == "%" {
        return String::new();
    }
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' && i + 2 < bytes.len() {
            let hex = s.get(i + 1..i + 3).unwrap_or("");
            if let Ok(b) = u8::from_str_radix(hex, 16) {
                out.push(b);
                i += 3;
                continue;
            }
        }
        out.push(bytes[i]);
        i += 1;
    }
    String::from_utf8(out).unwrap_or_default()
}

fn render(cache: &Cache) -> String {
    let mut out = String::from(MAGIC);
    out.push('\n');
    out.push_str(&format!("key {}\n", cache.key));
    for (rel, (stamp, a)) in &cache.entries {
        out.push_str(&format!("file {}\n", enc(rel)));
        out.push_str(&format!(
            "stamp {} {} {} {}\n",
            stamp.mtime_s, stamp.mtime_ns, stamp.size, stamp.hash
        ));
        for f in &a.facts.fns {
            out.push_str(&format!(
                "fn {} {} {} {} {} {}\n",
                enc(&f.name),
                enc(&f.self_ty),
                f.decl_line,
                f.end_line,
                u8::from(f.in_test),
                enc(&f.ret)
            ));
            for p in &f.params {
                out.push_str(&format!("fp {}\n", enc(p)));
            }
            for c in &f.calls {
                match c {
                    CallFact::Free { name, line } => {
                        out.push_str(&format!("c f {} {line}\n", enc(name)));
                    }
                    CallFact::Qualified { ty, name, line } => {
                        out.push_str(&format!("c q {} {} {line}\n", enc(ty), enc(name)));
                    }
                    CallFact::Method { chain, name, line } => {
                        out.push_str(&format!("c m {} {} {line}\n", enc(chain), enc(name)));
                    }
                }
            }
            for e in &f.events {
                match e {
                    Event::Alloc { what, line } => {
                        out.push_str(&format!("e a {} {line}\n", enc(what)));
                    }
                    Event::Panic { what, line } => {
                        out.push_str(&format!("e p {} {line}\n", enc(what)));
                    }
                    Event::IndexOp { chain, line } => {
                        out.push_str(&format!("e i {} {line}\n", enc(chain)));
                    }
                    Event::Nondet { what, line } => {
                        out.push_str(&format!("e n {} {line}\n", enc(what)));
                    }
                    Event::HashIter { chain, line } => {
                        out.push_str(&format!("e h {} {line}\n", enc(chain)));
                    }
                    Event::UnitMix { cyc, cnt, line } => {
                        out.push_str(&format!("e u {} {} {line}\n", enc(cyc), enc(cnt)));
                    }
                    Event::Cast { ty, line } => {
                        out.push_str(&format!("e c {} {line}\n", enc(ty)));
                    }
                    Event::Arith { what, line } => {
                        out.push_str(&format!("e r {} {line}\n", enc(what)));
                    }
                    Event::Lock { label, line } => {
                        out.push_str(&format!("e l {} {line}\n", enc(label)));
                    }
                    Event::LockEdge {
                        held,
                        acquired,
                        line,
                    } => {
                        out.push_str(&format!("e g {} {} {line}\n", enc(held), enc(acquired)));
                    }
                    Event::LockedCall { held, line } => {
                        out.push_str(&format!("e d {} {line}\n", enc(held)));
                    }
                    Event::Atomic {
                        label,
                        op,
                        ordering,
                        in_spawn,
                        line,
                    } => {
                        out.push_str(&format!(
                            "e t {} {} {} {} {line}\n",
                            enc(label),
                            enc(op),
                            enc(ordering),
                            u8::from(*in_spawn)
                        ));
                    }
                    Event::Blocking { what, line } => {
                        out.push_str(&format!("e b {} {line}\n", enc(what)));
                    }
                }
            }
            for acc in &f.accesses {
                out.push_str(&format!(
                    "a {} {} {} {}\n",
                    enc(&acc.chain),
                    enc(&acc.field),
                    acc.line,
                    u8::from(acc.write)
                ));
            }
        }
        for (name, line, fields) in &a.facts.structs {
            out.push_str(&format!("s {} {line}\n", enc(name)));
            for fd in fields {
                out.push_str(&format!(
                    "sf {} {} {} {}\n",
                    enc(&fd.name),
                    enc(&fd.ty),
                    fd.line,
                    u8::from(fd.public)
                ));
            }
        }
        for (name, value, line) in &a.facts.consts {
            out.push_str(&format!("k {} {} {line}\n", enc(name), enc(value)));
        }
        for r in &a.facts.field_reads {
            out.push_str(&format!("r {}\n", enc(r)));
        }
        for (write, wkey, line) in &a.facts.wire_keys {
            out.push_str(&format!("w {} {} {line}\n", u8::from(*write), enc(wkey)));
        }
        if let Some(deep) = &a.deep {
            out.push_str(&format!("deep {}\n", deep.dep_hash));
            for fd in &deep.fns {
                match fd.summary.ret {
                    Some(iv) => {
                        out.push_str(&format!("df {} {} {}", iv.lo, iv.hi, fd.summary.ret_taint))
                    }
                    None => out.push_str(&format!("df - - {}", fd.summary.ret_taint)),
                }
                for (what, line) in &fd.ariths {
                    out.push_str(&format!(" {} {line}", enc(what)));
                }
                out.push('\n');
            }
        }
        for p in &a.pragmas {
            out.push_str(&format!(
                "p {} {} {} {}\n",
                p.line,
                p.target_line,
                u8::from(p.reason_ok),
                enc(&p.rules.join(","))
            ));
        }
        for x in &a.externs {
            out.push_str(&format!("x {x}\n"));
        }
        out.push_str("end\n");
    }
    out
}

fn parse(text: &str, key: u64) -> Option<Cache> {
    let mut lines = text.lines();
    if lines.next()? != MAGIC {
        return None;
    }
    let recorded: u64 = lines.next()?.strip_prefix("key ")?.parse().ok()?;
    if recorded != key {
        return None;
    }
    let mut cache = Cache {
        key,
        ..Cache::default()
    };
    let mut rel: Option<String> = None;
    let mut stamp = Stamp {
        mtime_s: 0,
        mtime_ns: 0,
        size: 0,
        hash: 0,
    };
    let mut a = FileAnalysis::default();
    for line in lines {
        let toks: Vec<&str> = line.split(' ').collect();
        match *toks.first()? {
            "file" => rel = Some(dec(toks.get(1)?)),
            "stamp" => {
                stamp = Stamp {
                    mtime_s: toks.get(1)?.parse().ok()?,
                    mtime_ns: toks.get(2)?.parse().ok()?,
                    size: toks.get(3)?.parse().ok()?,
                    hash: toks.get(4)?.parse().ok()?,
                }
            }
            "fn" => a.facts.fns.push(FnFacts {
                name: dec(toks.get(1)?),
                self_ty: dec(toks.get(2)?),
                decl_line: toks.get(3)?.parse().ok()?,
                end_line: toks.get(4)?.parse().ok()?,
                in_test: *toks.get(5)? == "1",
                ret: dec(toks.get(6)?),
                params: Vec::new(),
                calls: Vec::new(),
                events: Vec::new(),
                accesses: Vec::new(),
            }),
            "fp" => a.facts.fns.last_mut()?.params.push(dec(toks.get(1)?)),
            "c" => {
                let f = a.facts.fns.last_mut()?;
                let call = match *toks.get(1)? {
                    "f" => CallFact::Free {
                        name: dec(toks.get(2)?),
                        line: toks.get(3)?.parse().ok()?,
                    },
                    "q" => CallFact::Qualified {
                        ty: dec(toks.get(2)?),
                        name: dec(toks.get(3)?),
                        line: toks.get(4)?.parse().ok()?,
                    },
                    "m" => CallFact::Method {
                        chain: dec(toks.get(2)?),
                        name: dec(toks.get(3)?),
                        line: toks.get(4)?.parse().ok()?,
                    },
                    _ => return None,
                };
                f.calls.push(call);
            }
            "e" => {
                let f = a.facts.fns.last_mut()?;
                let ev = match *toks.get(1)? {
                    "a" => Event::Alloc {
                        what: dec(toks.get(2)?),
                        line: toks.get(3)?.parse().ok()?,
                    },
                    "p" => Event::Panic {
                        what: dec(toks.get(2)?),
                        line: toks.get(3)?.parse().ok()?,
                    },
                    "i" => Event::IndexOp {
                        chain: dec(toks.get(2)?),
                        line: toks.get(3)?.parse().ok()?,
                    },
                    "n" => Event::Nondet {
                        what: dec(toks.get(2)?),
                        line: toks.get(3)?.parse().ok()?,
                    },
                    "h" => Event::HashIter {
                        chain: dec(toks.get(2)?),
                        line: toks.get(3)?.parse().ok()?,
                    },
                    "u" => Event::UnitMix {
                        cyc: dec(toks.get(2)?),
                        cnt: dec(toks.get(3)?),
                        line: toks.get(4)?.parse().ok()?,
                    },
                    "c" => Event::Cast {
                        ty: dec(toks.get(2)?),
                        line: toks.get(3)?.parse().ok()?,
                    },
                    "r" => Event::Arith {
                        what: dec(toks.get(2)?),
                        line: toks.get(3)?.parse().ok()?,
                    },
                    "l" => Event::Lock {
                        label: dec(toks.get(2)?),
                        line: toks.get(3)?.parse().ok()?,
                    },
                    "g" => Event::LockEdge {
                        held: dec(toks.get(2)?),
                        acquired: dec(toks.get(3)?),
                        line: toks.get(4)?.parse().ok()?,
                    },
                    "d" => Event::LockedCall {
                        held: dec(toks.get(2)?),
                        line: toks.get(3)?.parse().ok()?,
                    },
                    "t" => Event::Atomic {
                        label: dec(toks.get(2)?),
                        op: dec(toks.get(3)?),
                        ordering: dec(toks.get(4)?),
                        in_spawn: *toks.get(5)? == "1",
                        line: toks.get(6)?.parse().ok()?,
                    },
                    "b" => Event::Blocking {
                        what: dec(toks.get(2)?),
                        line: toks.get(3)?.parse().ok()?,
                    },
                    _ => return None,
                };
                f.events.push(ev);
            }
            "a" => {
                let f = a.facts.fns.last_mut()?;
                f.accesses.push(Access {
                    chain: dec(toks.get(1)?),
                    field: dec(toks.get(2)?),
                    line: toks.get(3)?.parse().ok()?,
                    write: *toks.get(4)? == "1",
                });
            }
            "s" => {
                a.facts
                    .structs
                    .push((dec(toks.get(1)?), toks.get(2)?.parse().ok()?, Vec::new()))
            }
            "sf" => {
                let (_, _, fields) = a.facts.structs.last_mut()?;
                fields.push(FieldDef {
                    name: dec(toks.get(1)?),
                    ty: dec(toks.get(2)?),
                    line: toks.get(3)?.parse().ok()?,
                    public: *toks.get(4)? == "1",
                });
            }
            "k" => a.facts.consts.push((
                dec(toks.get(1)?),
                dec(toks.get(2)?),
                toks.get(3)?.parse().ok()?,
            )),
            "r" => a.facts.field_reads.push(dec(toks.get(1)?)),
            "w" => a.facts.wire_keys.push((
                *toks.get(1)? == "1",
                dec(toks.get(2)?),
                toks.get(3)?.parse().ok()?,
            )),
            "deep" => {
                a.deep = Some(DeepFacts {
                    dep_hash: toks.get(1)?.parse().ok()?,
                    fns: Vec::new(),
                })
            }
            "df" => {
                let deep = a.deep.as_mut()?;
                let ret = if *toks.get(1)? == "-" {
                    None
                } else {
                    Some(Interval {
                        lo: toks.get(1)?.parse().ok()?,
                        hi: toks.get(2)?.parse().ok()?,
                    })
                };
                let ret_taint: u64 = toks.get(3)?.parse().ok()?;
                let mut ariths = Vec::new();
                let mut i = 4;
                while i + 1 < toks.len() {
                    ariths.push((dec(toks[i]), toks[i + 1].parse().ok()?));
                    i += 2;
                }
                if i != toks.len() {
                    return None;
                }
                deep.fns.push(FnDeep {
                    summary: FnSummary { ret, ret_taint },
                    ariths,
                });
            }
            "p" => {
                let joined = dec(toks.get(4)?);
                a.pragmas.push(Pragma {
                    line: toks.get(1)?.parse().ok()?,
                    target_line: toks.get(2)?.parse().ok()?,
                    reason_ok: *toks.get(3)? == "1",
                    rules: if joined.is_empty() {
                        Vec::new()
                    } else {
                        joined.split(',').map(str::to_string).collect()
                    },
                });
            }
            "x" => a.externs.push(toks.get(1)?.parse().ok()?),
            "end" => {
                cache
                    .entries
                    .insert(rel.take()?, (stamp.clone(), std::mem::take(&mut a)));
            }
            _ => return None,
        }
    }
    Some(cache)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_analysis() -> FileAnalysis {
        crate::analyze_source(
            r#"
            // lint:allow(L001): bounded by warm-up
            pub struct S { pub total_cycles: u64 }
            pub const TAG: u8 = 3;
            impl S {
                pub fn go(&mut self, xs: &[u64]) -> u64 {
                    let v = xs.to_vec(); // lint:extern
                    self.total_cycles += v.len() as u64;
                    helper(v[0])
                }
            }
            fn helper(x: u64) -> u64 { x.wrapping_add(1) }
            "#,
        )
    }

    #[test]
    fn analysis_round_trips_through_the_line_format() {
        let mut a = sample_analysis();
        a.facts
            .wire_keys
            .push((true, "total cycles".to_string(), 9));
        a.facts.wire_keys.push((false, "cpi".to_string(), 14));
        a.deep = Some(DeepFacts {
            dep_hash: 0x1234_5678_9abc_def0,
            fns: vec![
                FnDeep {
                    summary: FnSummary {
                        ret: Some(Interval { lo: 0, hi: 4096 }),
                        ret_taint: 0b101,
                    },
                    ariths: vec![("total_cycles * scale".to_string(), 8)],
                },
                FnDeep {
                    summary: FnSummary {
                        ret: None,
                        ret_taint: 0,
                    },
                    ariths: Vec::new(),
                },
            ],
        });
        let stamp = Stamp {
            mtime_s: 1754000000,
            mtime_ns: 123456789,
            size: 420,
            hash: 0xdead_beef_cafe_f00d,
        };
        let mut cache = Cache {
            key: 7,
            ..Cache::default()
        };
        cache.insert("crates/x/src/lib.rs".to_string(), stamp.clone(), a.clone());
        let text = render(&cache);
        let mut reloaded = parse(&text, 7).expect("round-trip parse");
        let hit = reloaded
            .lookup("crates/x/src/lib.rs", &stamp)
            .expect("stamp should hit");
        assert_eq!(hit, a);
    }

    /// Flipping a config knob changes the cache key, so every cached
    /// verdict is invalidated and the workspace re-scans.
    #[test]
    fn config_knob_flip_invalidates_the_whole_cache() {
        let base = "[[hot]]\nfile = \"a.rs\"\nroots = [\"go\"]\n";
        let flipped = "[[hot]]\nfile = \"a.rs\"\nroots = [\"go\", \"feed\"]\n";
        let k1 = crate::cache_key(base);
        let k2 = crate::cache_key(flipped);
        assert_ne!(k1, k2);
        let stamp = Stamp {
            mtime_s: 1,
            mtime_ns: 2,
            size: 3,
            hash: 4,
        };
        let mut cache = Cache {
            key: k1,
            ..Cache::default()
        };
        cache.insert("f.rs".to_string(), stamp.clone(), sample_analysis());
        let text = render(&cache);
        // Same key: the entry survives. Flipped knob: empty cache.
        let mut same = parse(&text, k1).expect("same key parses");
        assert!(same.lookup("f.rs", &stamp).is_some());
        assert!(parse(&text, k2).is_none());
    }

    #[test]
    fn hash_match_survives_mtime_churn() {
        let a = sample_analysis();
        let old = Stamp {
            mtime_s: 100,
            mtime_ns: 0,
            size: 10,
            hash: 42,
        };
        let mut cache = Cache::default();
        cache.insert("f.rs".to_string(), old, a.clone());
        // Same content hash, different mtime (e.g. fresh checkout).
        let touched = Stamp {
            mtime_s: 999,
            mtime_ns: 7,
            size: 10,
            hash: 42,
        };
        assert_eq!(cache.lookup("f.rs", &touched), Some(a));
        // And the stored stamp was refreshed for the next fast path.
        let again = cache.lookup("f.rs", &touched);
        assert!(again.is_some());
    }

    #[test]
    fn content_change_misses() {
        let a = sample_analysis();
        let old = Stamp {
            mtime_s: 100,
            mtime_ns: 0,
            size: 10,
            hash: 42,
        };
        let mut cache = Cache::default();
        cache.insert("f.rs".to_string(), old, a);
        let edited = Stamp {
            mtime_s: 999,
            mtime_ns: 0,
            size: 11,
            hash: 43,
        };
        assert_eq!(cache.lookup("f.rs", &edited), None);
    }

    #[test]
    fn garbage_and_version_mismatch_yield_empty() {
        assert!(parse("not a cache", 0).is_none());
        assert!(parse("aurora-lint-cache v3\nkey 0\nfile x\n", 0).is_none());
    }

    #[test]
    fn percent_encoding_round_trips() {
        for s in ["", "a b", "100%", "a%20b", "x\ty", "plain", "f:a~b.m:c"] {
            assert_eq!(dec(&enc(s)), s, "{s:?}");
        }
    }
}
