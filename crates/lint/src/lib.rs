//! `aurora-lint` — a zero-dependency static analyzer for the aurora
//! workspace.
//!
//! The simulator's correctness rests on invariants that ordinary tests
//! cannot see: the hot loop must stay allocation- and panic-free, every
//! counter the model accumulates must be consumed by a report, every config
//! knob must be exercised by a sweep, and the packed trace layout must
//! never drift without a `TRACE_FORMAT_VERSION` bump. This crate walks the
//! workspace source with a hand-rolled lexer (no `syn` — tier-1 builds
//! offline) and enforces those invariants as lint rules L001–L006.
//!
//! Findings are suppressed inline with `// lint:allow(L0xx): <reason>`;
//! the reason is mandatory, and a pragma without one is itself a finding
//! (L000). See `docs/LINTS.md` for the full rule catalogue.

pub mod config;
pub mod lexer;
pub mod rules;

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use config::LintConfig;
use lexer::{FnSpan, Tok};

/// One analyzed source file.
pub struct FileData {
    /// Path relative to the workspace root, `/`-separated.
    pub rel: String,
    pub toks: Vec<Tok>,
    pub fns: Vec<FnSpan>,
    pub pragmas: Vec<Pragma>,
}

/// An inline `lint:allow(L0xx, ...): reason` comment suppression.
#[derive(Debug, Clone)]
pub struct Pragma {
    pub line: u32,
    /// The first non-comment line at or below the pragma: the code the
    /// pragma is attached to (continuation comment lines are skipped, so a
    /// pragma may wrap across several `//` lines).
    pub target_line: u32,
    pub rules: Vec<String>,
    /// False when the mandatory `: reason` part is missing or empty.
    pub reason_ok: bool,
}

#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    pub file: String,
    pub line: u32,
    pub rule: &'static str,
    pub msg: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: {} {}", self.file, self.line, self.rule, self.msg)
    }
}

pub struct Report {
    pub findings: Vec<Finding>,
    pub suppressed: usize,
    pub files_scanned: usize,
}

pub struct Workspace {
    pub root: PathBuf,
    pub files: BTreeMap<String, FileData>,
}

impl Workspace {
    pub fn file(&self, rel: &str) -> Option<&FileData> {
        self.files.get(rel)
    }
}

/// Analyze the workspace rooted at `root` (the directory holding
/// `lint.toml`). Returns the post-suppression report.
pub fn analyze(root: &Path) -> Result<Report, String> {
    let cfg = LintConfig::load(&root.join("lint.toml")).map_err(|e| e.to_string())?;
    analyze_with(root, &cfg)
}

pub fn analyze_with(root: &Path, cfg: &LintConfig) -> Result<Report, String> {
    let ws = load_workspace(root, cfg)?;
    let raw = rules::run_all(&ws, cfg);
    Ok(apply_pragmas(&ws, raw))
}

/// Load and lex every `.rs` file under `root` not excluded by the config.
pub fn load_workspace(root: &Path, cfg: &LintConfig) -> Result<Workspace, String> {
    let mut files = BTreeMap::new();
    let mut paths = Vec::new();
    collect_rs(root, root, &cfg.exclude, &mut paths)?;
    for path in paths {
        let rel = rel_path(root, &path);
        let src = std::fs::read_to_string(&path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let toks = lexer::lex(&src);
        let fns = lexer::fn_spans(&toks);
        let pragmas = scan_pragmas(&src);
        files.insert(
            rel.clone(),
            FileData {
                rel,
                toks,
                fns,
                pragmas,
            },
        );
    }
    Ok(Workspace {
        root: root.to_path_buf(),
        files,
    })
}

fn rel_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

fn collect_rs(
    root: &Path,
    dir: &Path,
    exclude: &[String],
    out: &mut Vec<PathBuf>,
) -> Result<(), String> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("cannot list {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| e.to_string())?;
        let path = entry.path();
        let rel = rel_path(root, &path);
        if exclude
            .iter()
            .any(|p| rel == *p || rel.starts_with(&format!("{p}/")))
        {
            continue;
        }
        let name = entry.file_name().to_string_lossy().into_owned();
        if path.is_dir() {
            if name.starts_with('.') || name == "target" {
                continue;
            }
            collect_rs(root, &path, exclude, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    out.sort();
    Ok(())
}

/// Scan raw source lines for suppression pragmas. This runs on the raw text
/// (not the token stream) because pragmas live inside comments, which the
/// lexer discards.
pub fn scan_pragmas(src: &str) -> Vec<Pragma> {
    let lines: Vec<&str> = src.lines().collect();
    let mut out = Vec::new();
    for (idx, line) in lines.iter().enumerate() {
        let Some(comment) = line.find("//") else {
            continue;
        };
        // The pragma must be the comment's leading content; this keeps prose
        // that merely *mentions* the pragma syntax (docs, explain strings)
        // from registering as a suppression.
        let body = line[comment + 2..]
            .trim_start_matches(['/', '!'])
            .trim_start();
        if !body.starts_with("lint:allow(") {
            continue;
        }
        // The pragma attaches to the first following non-comment line, so a
        // long reason may wrap across several comment lines.
        let target_line = (idx + 1..lines.len())
            .find(|&j| {
                let t = lines[j].trim_start();
                !t.is_empty() && !t.starts_with("//")
            })
            .map(|j| (j + 1) as u32)
            .unwrap_or((idx + 1) as u32);
        let after = &body["lint:allow(".len()..];
        let Some(close) = after.find(')') else {
            out.push(Pragma {
                line: (idx + 1) as u32,
                target_line,
                rules: Vec::new(),
                reason_ok: false,
            });
            continue;
        };
        let ids: Vec<String> = after[..close]
            .split(',')
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty())
            .collect();
        let well_formed_ids = !ids.is_empty()
            && ids.iter().all(|id| {
                id.len() == 4 && id.starts_with('L') && id[1..].chars().all(|c| c.is_ascii_digit())
            });
        let rest = after[close + 1..].trim_start();
        let reason_ok = well_formed_ids && rest.starts_with(':') && !rest[1..].trim().is_empty();
        out.push(Pragma {
            line: (idx + 1) as u32,
            target_line,
            rules: ids,
            reason_ok,
        });
    }
    out
}

/// Fold pragmas into the raw findings: well-formed pragmas suppress
/// matching findings, malformed ones become L000 findings themselves.
///
/// A pragma applies to findings on its own line and on its target line —
/// the first non-comment line below it. When the target line declares a
/// `fn` item, the named rules are suppressed for that entire function
/// body.
fn apply_pragmas(ws: &Workspace, raw: Vec<Finding>) -> Report {
    let mut findings = Vec::new();
    let mut suppressed = 0usize;
    for f in raw {
        let covered = ws
            .file(&f.file)
            .map(|fd| {
                fd.pragmas.iter().any(|p| {
                    p.reason_ok
                        && p.rules.iter().any(|r| r == f.rule)
                        && pragma_covers(fd, p, f.line)
                })
            })
            .unwrap_or(false);
        if covered {
            suppressed += 1;
        } else {
            findings.push(f);
        }
    }
    for fd in ws.files.values() {
        for p in fd.pragmas.iter().filter(|p| !p.reason_ok) {
            findings.push(Finding {
                file: fd.rel.clone(),
                line: p.line,
                rule: "L000",
                msg: "suppression pragma is malformed or missing its mandatory `: <reason>`"
                    .to_string(),
            });
        }
    }
    findings.sort();
    findings.dedup();
    Report {
        findings,
        suppressed,
        files_scanned: ws.files.len(),
    }
}

fn pragma_covers(fd: &FileData, p: &Pragma, line: u32) -> bool {
    if p.line == line || p.target_line == line {
        return true;
    }
    // Function-level coverage: the pragma's target line is the `fn`
    // declaration itself, and the finding is inside that function's body.
    fd.fns
        .iter()
        .any(|s| s.decl_line == p.target_line && line >= s.decl_line && line <= s.end_line)
}

/// Walk upward from `start` to the nearest directory containing `lint.toml`.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        if dir.join("lint.toml").is_file() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}
