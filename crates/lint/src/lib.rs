//! `aurora-lint` — a zero-dependency static analyzer for the aurora
//! workspace.
//!
//! The simulator's correctness rests on invariants that ordinary tests
//! cannot see: the hot loop must stay allocation- and panic-free, every
//! counter the model accumulates must be consumed by a report, every config
//! knob must be exercised by a sweep, the packed trace layout must never
//! drift without a `TRACE_FORMAT_VERSION` bump, replay must be
//! deterministic, and cycle values must not silently mix with counts. This
//! crate parses the workspace source with a hand-rolled recursive-descent
//! parser (no `syn` — tier-1 builds offline), builds a workspace-wide call
//! graph, and enforces those invariants as lint rules L000–L009.
//!
//! The pipeline has two phases:
//!
//! 1. **Per-file** (pure, cacheable, parallel): lex → parse →
//!    [`facts::extract`] produces a [`facts::FileFacts`] — call sites with
//!    receiver *chain descriptors*, rule-relevant events, struct layouts.
//! 2. **Workspace** (always fresh): [`graph::Graph`] resolves chains
//!    against the symbol index, computes reachability from the hot roots
//!    declared in `lint.toml`, and [`rules`] walks the result.
//!
//! Findings are suppressed inline with `// lint:allow(L0xx): <reason>`;
//! the reason is mandatory, and a pragma without one is itself a finding
//! (L000), while a pragma that no longer suppresses anything is an error
//! too (L009). `// lint:extern` marks a line's calls as deliberately
//! unresolvable (dynamic dispatch). See `docs/LINTS.md` for the catalogue.

pub mod ast;
pub mod cache;
pub mod concurrency;
pub mod config;
pub mod dataflow;
pub mod facts;
pub mod fix;
pub mod graph;
pub mod lexer;
pub mod output;
pub mod parser;
pub mod rules;
pub mod summary;
pub mod taint;

use std::collections::HashSet;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use cache::Cache;
use config::LintConfig;
use facts::FileFacts;

/// An inline `lint:allow(L0xx, ...): reason` comment suppression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pragma {
    pub line: u32,
    /// The first non-comment line at or below the pragma: the code the
    /// pragma is attached to (continuation comment lines are skipped, so a
    /// pragma may wrap across several `//` lines).
    pub target_line: u32,
    pub rules: Vec<String>,
    /// False when the mandatory `: reason` part is missing or empty.
    pub reason_ok: bool,
}

#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    pub file: String,
    pub line: u32,
    pub rule: &'static str,
    pub msg: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: {} {}", self.file, self.line, self.rule, self.msg)
    }
}

pub struct Report {
    pub findings: Vec<Finding>,
    pub suppressed: usize,
    pub files_scanned: usize,
    /// Files served from the incremental cache this run.
    pub cache_hits: usize,
}

/// Everything derived from one file's content. A pure function of the
/// source text, which is what makes it safe to cache by content hash.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FileAnalysis {
    pub facts: FileFacts,
    pub pragmas: Vec<Pragma>,
    /// Lines carrying a `// lint:extern` marker.
    pub externs: Vec<u32>,
    /// Interprocedural results, valid for the dependency hash they
    /// carry. `None` until the deep phase has run for this file.
    pub deep: Option<summary::DeepFacts>,
}

/// Lex, parse and extract facts from one file's source.
pub fn analyze_source(src: &str) -> FileAnalysis {
    let toks = lexer::lex(src);
    let parsed = parser::parse_file(&toks);
    let mut facts = facts::extract(
        &parsed.fns,
        lexer::all_structs(&toks),
        lexer::numeric_consts(&toks),
    );
    facts.wire_keys = lexer::wire_keys(src);
    FileAnalysis {
        facts,
        pragmas: scan_pragmas(src),
        externs: scan_externs(src),
        deep: None,
    }
}

pub struct Workspace {
    pub root: PathBuf,
    /// `(rel path, facts)`, sorted by path — the slice [`graph::Graph`]
    /// borrows, so file indices here are the graph's file indices.
    pub files: Vec<(String, FileFacts)>,
    /// Index-aligned with `files`.
    pub pragmas: Vec<Vec<Pragma>>,
    /// Index-aligned with `files`.
    pub externs: Vec<Vec<u32>>,
    /// Raw source text, index-aligned with `files` — the deep phase
    /// re-parses function bodies from it.
    pub srcs: Vec<String>,
    /// Cached interprocedural results, index-aligned with `files`;
    /// refreshed in place by [`summary::deep_phase`].
    pub deeps: Vec<Option<summary::DeepFacts>>,
    /// L015 findings produced by the taint worklist: `(file, line,
    /// message)`. Always recomputed fresh — see [`summary`].
    pub taints: Vec<(String, u32, String)>,
    /// Files served from the incremental cache when loading.
    pub cache_hits: usize,
}

impl Workspace {
    pub fn idx(&self, rel: &str) -> Option<usize> {
        self.files
            .binary_search_by(|(r, _)| r.as_str().cmp(rel))
            .ok()
    }

    pub fn facts_of(&self, rel: &str) -> Option<&FileFacts> {
        self.idx(rel).map(|i| &self.files[i].1)
    }

    /// All `(file index, line)` pairs marked `// lint:extern`.
    pub fn extern_lines(&self) -> HashSet<(usize, u32)> {
        let mut out = HashSet::new();
        for (fi, lines) in self.externs.iter().enumerate() {
            for &l in lines {
                out.insert((fi, l));
            }
        }
        out
    }
}

/// Analyze the workspace rooted at `root` (the directory holding
/// `lint.toml`). Returns the post-suppression report. No cache: tests and
/// library callers always see fresh facts.
pub fn analyze(root: &Path) -> Result<Report, String> {
    let cfg = LintConfig::load(&root.join("lint.toml")).map_err(|e| e.to_string())?;
    analyze_with(root, &cfg, None)
}

pub fn analyze_with(
    root: &Path,
    cfg: &LintConfig,
    mut cache: Option<&mut Cache>,
) -> Result<Report, String> {
    let mut ws = load_workspace_cached(root, cfg, cache.as_deref_mut())?;
    summary::deep_phase(&mut ws, cfg, cache);
    let raw = rules::run_all(&ws, cfg);
    Ok(apply_pragmas(&ws, raw))
}

/// Load and analyze every `.rs` file under `root` not excluded by the
/// config.
pub fn load_workspace(root: &Path, cfg: &LintConfig) -> Result<Workspace, String> {
    load_workspace_cached(root, cfg, None)
}

/// Like [`load_workspace`], reusing cached per-file analyses for files
/// whose content is unchanged (mtime+size fast path, FNV hash slow path).
pub fn load_workspace_cached(
    root: &Path,
    cfg: &LintConfig,
    mut cache: Option<&mut Cache>,
) -> Result<Workspace, String> {
    let mut paths = Vec::new();
    collect_rs(root, root, &cfg.exclude, &mut paths)?;
    let mut done: Vec<(String, FileAnalysis)> = Vec::new();
    let mut jobs: Vec<(String, String, cache::Stamp)> = Vec::new();
    let mut src_of: std::collections::HashMap<String, String> = std::collections::HashMap::new();
    for path in paths {
        let rel = rel_path(root, &path);
        let src = std::fs::read_to_string(&path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let stamp = cache::Stamp::of(&path, &src);
        if let Some(c) = cache.as_deref_mut() {
            if let Some(hit) = c.lookup(&rel, &stamp) {
                src_of.insert(rel.clone(), src);
                done.push((rel, hit));
                continue;
            }
        }
        src_of.insert(rel.clone(), src.clone());
        jobs.push((rel, src, stamp));
    }
    let cache_hits = done.len();
    let parsed = parse_parallel(&jobs);
    if let Some(c) = cache {
        for ((rel, _, stamp), (_, analysis)) in jobs.iter().zip(&parsed) {
            c.insert(rel.clone(), stamp.clone(), analysis.clone());
        }
    }
    done.extend(parsed);
    done.sort_by(|a, b| a.0.cmp(&b.0));
    let mut ws = Workspace {
        root: root.to_path_buf(),
        files: Vec::with_capacity(done.len()),
        pragmas: Vec::with_capacity(done.len()),
        externs: Vec::with_capacity(done.len()),
        srcs: Vec::with_capacity(done.len()),
        deeps: Vec::with_capacity(done.len()),
        taints: Vec::new(),
        cache_hits,
    };
    for (rel, a) in done {
        ws.srcs.push(src_of.remove(&rel).unwrap_or_default());
        ws.files.push((rel, a.facts));
        ws.pragmas.push(a.pragmas);
        ws.externs.push(a.externs);
        ws.deeps.push(a.deep);
    }
    Ok(ws)
}

/// Run [`analyze_source`] over the cache-miss files, fanning out across
/// threads. Order of the result is irrelevant — the caller sorts by path.
fn parse_parallel(jobs: &[(String, String, cache::Stamp)]) -> Vec<(String, FileAnalysis)> {
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(8)
        .min(jobs.len());
    if workers <= 1 {
        return jobs
            .iter()
            .map(|(rel, src, _)| (rel.clone(), analyze_source(src)))
            .collect();
    }
    let next = AtomicUsize::new(0);
    let out: Mutex<Vec<(String, FileAnalysis)>> = Mutex::new(Vec::with_capacity(jobs.len()));
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some((rel, src, _)) = jobs.get(i) else {
                    break;
                };
                let a = analyze_source(src);
                out.lock().expect("analysis mutex").push((rel.clone(), a));
            });
        }
    });
    out.into_inner().expect("analysis mutex")
}

fn rel_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

fn collect_rs(
    root: &Path,
    dir: &Path,
    exclude: &[String],
    out: &mut Vec<PathBuf>,
) -> Result<(), String> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("cannot list {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| e.to_string())?;
        let path = entry.path();
        let rel = rel_path(root, &path);
        if exclude
            .iter()
            .any(|p| rel == *p || rel.starts_with(&format!("{p}/")))
        {
            continue;
        }
        let name = entry.file_name().to_string_lossy().into_owned();
        if path.is_dir() {
            if name.starts_with('.') || name == "target" {
                continue;
            }
            collect_rs(root, &path, exclude, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    out.sort();
    Ok(())
}

/// Scan source comments for suppression pragmas. Comments are located by a
/// string-literal-aware walk ([`lexer::comment_lines`]) so that prose which
/// merely *mentions* the pragma syntax inside a string (an explain text, a
/// fixture embedded in a raw literal) never registers as a suppression.
pub fn scan_pragmas(src: &str) -> Vec<Pragma> {
    let comments = lexer::comment_lines(src);
    let code_lines: Vec<u32> = lexer::lex(src).iter().map(|t| t.line).collect();
    let mut out = Vec::new();
    for (line, text) in comments {
        // The pragma must be the comment's leading content.
        let body = text.trim_start_matches(['/', '!']).trim_start();
        if !body.starts_with("lint:allow(") {
            continue;
        }
        // The pragma attaches to the first following line that carries code,
        // so a long reason may wrap across several comment lines.
        let target_line = code_lines
            .iter()
            .copied()
            .find(|&l| l > line)
            .unwrap_or(line);
        let after = &body["lint:allow(".len()..];
        let Some(close) = after.find(')') else {
            out.push(Pragma {
                line,
                target_line,
                rules: Vec::new(),
                reason_ok: false,
            });
            continue;
        };
        let ids: Vec<String> = after[..close]
            .split(',')
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty())
            .collect();
        let well_formed_ids = !ids.is_empty()
            && ids.iter().all(|id| {
                id.len() == 4 && id.starts_with('L') && id[1..].chars().all(|c| c.is_ascii_digit())
            });
        let rest = after[close + 1..].trim_start();
        let reason_ok = well_formed_ids && rest.starts_with(':') && !rest[1..].trim().is_empty();
        out.push(Pragma {
            line,
            target_line,
            rules: ids,
            reason_ok,
        });
    }
    out
}

/// Scan for `// lint:extern` markers: a trailing marker applies to its own
/// line, a standalone comment line applies to the next non-comment line.
/// Calls on a marked line resolve to no graph edges — the escape hatch for
/// dynamic dispatch and function pointers the resolver cannot follow.
pub fn scan_externs(src: &str) -> Vec<u32> {
    let code_lines: Vec<u32> = lexer::lex(src).iter().map(|t| t.line).collect();
    let mut out = Vec::new();
    for (line, text) in lexer::comment_lines(src) {
        let body = text.trim_start_matches(['/', '!']).trim_start();
        if !body.starts_with("lint:extern") {
            continue;
        }
        // A trailing marker (the comment shares its line with code) applies
        // to its own line; a standalone comment to the next code line.
        let target = if code_lines.binary_search(&line).is_ok() {
            line
        } else {
            code_lines
                .iter()
                .copied()
                .find(|&l| l > line)
                .unwrap_or(line)
        };
        out.push(target);
    }
    out
}

/// Fold pragmas into the raw findings: well-formed pragmas suppress
/// matching findings, malformed ones become L000 findings, and well-formed
/// pragmas that suppressed *nothing* become L009 findings (stale allows
/// rot just like dead counters — they silently disable a rule at a site
/// that no longer needs it). L000/L009 are produced after suppression and
/// therefore cannot themselves be allowed away.
///
/// A pragma applies to findings on its own line and on its target line —
/// the first non-comment line below it. When the target line declares a
/// `fn` item, the named rules are suppressed for that entire function
/// body.
fn apply_pragmas(ws: &Workspace, raw: Vec<Finding>) -> Report {
    let mut findings = Vec::new();
    let mut suppressed = 0usize;
    let mut used: HashSet<(usize, usize, String)> = HashSet::new();
    for f in raw {
        let mut covered = false;
        if let Some(fi) = ws.idx(&f.file) {
            for (pi, p) in ws.pragmas[fi].iter().enumerate() {
                if p.reason_ok
                    && p.rules.iter().any(|r| r == f.rule)
                    && pragma_covers(&ws.files[fi].1, p, f.line)
                {
                    used.insert((fi, pi, f.rule.to_string()));
                    covered = true;
                }
            }
        }
        if covered {
            suppressed += 1;
        } else {
            findings.push(f);
        }
    }
    for (fi, (rel, _)) in ws.files.iter().enumerate() {
        for (pi, p) in ws.pragmas[fi].iter().enumerate() {
            if !p.reason_ok {
                findings.push(Finding {
                    file: rel.clone(),
                    line: p.line,
                    rule: "L000",
                    msg: "suppression pragma is malformed or missing its mandatory `: <reason>`"
                        .to_string(),
                });
                continue;
            }
            for r in &p.rules {
                if !used.contains(&(fi, pi, r.clone())) {
                    findings.push(Finding {
                        file: rel.clone(),
                        line: p.line,
                        rule: "L009",
                        msg: format!(
                            "stale pragma: `lint:allow({r})` suppresses nothing — {r} no longer \
                             fires on its target; delete the pragma or drop {r} from it"
                        ),
                    });
                }
            }
        }
    }
    findings.sort();
    // One diagnostic per (file, line, rule): distinct events on the same
    // line (e.g. an allocating constructor seen through two extractors)
    // collapse into the lexicographically-first message.
    findings.dedup_by(|a, b| a.file == b.file && a.line == b.line && a.rule == b.rule);
    Report {
        findings,
        suppressed,
        files_scanned: ws.files.len(),
        cache_hits: ws.cache_hits,
    }
}

fn pragma_covers(facts: &FileFacts, p: &Pragma, line: u32) -> bool {
    if p.line == line || p.target_line == line {
        return true;
    }
    // Function-level coverage: the pragma's target line is the `fn`
    // declaration itself, and the finding is inside that function's body.
    facts
        .fns
        .iter()
        .any(|s| s.decl_line == p.target_line && line >= s.decl_line && line <= s.end_line)
}

/// Walk upward from `start` to the nearest directory containing `lint.toml`.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        if dir.join("lint.toml").is_file() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// The incremental-cache key: lint.toml's content hash folded with the
/// rule-set version, so editing configuration or upgrading the analyzer
/// invalidates every cached per-file verdict instead of serving stale ones.
pub fn cache_key(config_text: &str) -> u64 {
    fnv1a64(config_text.as_bytes()) ^ rules::RULE_SET_VERSION.wrapping_mul(0x9e37_79b9_7f4a_7c15)
}

/// FNV-1a 64-bit — used for both the trace-format fingerprint and the
/// facts-cache content hash.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for b in bytes {
        hash ^= u64::from(*b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}
