//! Minimal hand-rolled Rust lexer.
//!
//! Strips comments and string/char literals, then yields identifier, number,
//! and punctuation tokens tagged with 1-based line numbers. This is not a
//! full Rust lexer — it tokenizes just enough to resolve `fn` boundaries,
//! struct fields, paths, method calls, and `as` casts, which is all the
//! rule engine needs. Because literals and comments are dropped before any
//! rule runs, prose like "never call .unwrap() here" in a doc comment can
//! never trigger a finding.

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    Ident,
    Num,
    Punct,
}

#[derive(Debug, Clone)]
pub struct Tok {
    pub kind: TokKind,
    pub text: String,
    pub line: u32,
}

impl Tok {
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    pub fn is_punct(&self, s: &str) -> bool {
        self.kind == TokKind::Punct && self.text == s
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Tokenize `src`, discarding comments and all literal bodies.
pub fn lex(src: &str) -> Vec<Tok> {
    let chars: Vec<char> = src.chars().collect();
    let n = chars.len();
    let mut toks = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    while i < n {
        let c = chars[i];
        if c == '\n' {
            line += 1;
            i += 1;
        } else if c.is_whitespace() {
            i += 1;
        } else if c == '/' && i + 1 < n && chars[i + 1] == '/' {
            while i < n && chars[i] != '\n' {
                i += 1;
            }
        } else if c == '/' && i + 1 < n && chars[i + 1] == '*' {
            let mut depth = 1u32;
            i += 2;
            while i < n && depth > 0 {
                if chars[i] == '\n' {
                    line += 1;
                    i += 1;
                } else if chars[i] == '/' && i + 1 < n && chars[i + 1] == '*' {
                    depth += 1;
                    i += 2;
                } else if chars[i] == '*' && i + 1 < n && chars[i + 1] == '/' {
                    depth -= 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
        } else if c == '"' {
            i = skip_string(&chars, i, &mut line);
        } else if c == '\'' {
            i = skip_quote(&chars, i, &mut line);
        } else if c.is_ascii_digit() {
            let start = i;
            while i < n && (chars[i].is_alphanumeric() || chars[i] == '_') {
                i += 1;
            }
            // Consume a fractional part, but never a `..` range operator.
            if i + 1 < n && chars[i] == '.' && chars[i + 1].is_ascii_digit() {
                i += 1;
                while i < n && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
            }
            toks.push(Tok {
                kind: TokKind::Num,
                text: chars[start..i].iter().collect(),
                line,
            });
        } else if is_ident_start(c) {
            let start = i;
            while i < n && is_ident_char(chars[i]) {
                i += 1;
            }
            let text: String = chars[start..i].iter().collect();
            // Raw/byte string prefixes swallow the literal instead of
            // emitting an identifier token.
            if i < n && matches!(text.as_str(), "r" | "b" | "br" | "rb") {
                match chars[i] {
                    '"' if text == "b" => {
                        i = skip_string(&chars, i, &mut line);
                        continue;
                    }
                    '"' | '#' if text != "b" => {
                        i = skip_raw_string(&chars, i, &mut line);
                        continue;
                    }
                    '\'' if text == "b" => {
                        i = skip_quote(&chars, i, &mut line);
                        continue;
                    }
                    _ => {}
                }
            }
            toks.push(Tok {
                kind: TokKind::Ident,
                text,
                line,
            });
        } else {
            toks.push(Tok {
                kind: TokKind::Punct,
                text: c.to_string(),
                line,
            });
            i += 1;
        }
    }
    toks
}

/// Skip a `"..."` literal starting at the opening quote; returns the index
/// one past the closing quote.
fn skip_string(chars: &[char], start: usize, line: &mut u32) -> usize {
    let n = chars.len();
    let mut i = start + 1;
    while i < n {
        match chars[i] {
            '\\' => {
                if i + 1 < n && chars[i + 1] == '\n' {
                    *line += 1;
                }
                i += 2;
            }
            '"' => return i + 1,
            '\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    i
}

/// Skip a raw string literal: cursor is on `"` or the first `#` after an
/// `r`/`br` prefix.
fn skip_raw_string(chars: &[char], start: usize, line: &mut u32) -> usize {
    let n = chars.len();
    let mut i = start;
    let mut hashes = 0usize;
    while i < n && chars[i] == '#' {
        hashes += 1;
        i += 1;
    }
    if i >= n || chars[i] != '"' {
        // `r#ident` raw identifier: the hashes belonged to an identifier.
        return i;
    }
    i += 1;
    while i < n {
        if chars[i] == '\n' {
            *line += 1;
            i += 1;
        } else if chars[i] == '"' {
            let mut h = 0usize;
            while h < hashes && i + 1 + h < n && chars[i + 1 + h] == '#' {
                h += 1;
            }
            if h == hashes {
                return i + 1 + hashes;
            }
            i += 1;
        } else {
            i += 1;
        }
    }
    i
}

/// Skip a `'x'` char literal or a `'lifetime`; cursor is on the `'`.
fn skip_quote(chars: &[char], start: usize, line: &mut u32) -> usize {
    let n = chars.len();
    let i = start;
    if i + 1 < n && chars[i + 1] == '\\' {
        // Escaped char literal: scan to the closing quote.
        let mut j = i + 2;
        while j < n {
            match chars[j] {
                '\\' => j += 2,
                '\'' => return j + 1,
                '\n' => {
                    *line += 1;
                    j += 1;
                }
                _ => j += 1,
            }
        }
        j
    } else if i + 2 < n && chars[i + 2] == '\'' && chars[i + 1] != '\'' {
        i + 3
    } else {
        // Lifetime: consume the tick and the trailing identifier.
        let mut j = i + 1;
        while j < n && is_ident_char(chars[j]) {
            j += 1;
        }
        j
    }
}

/// `(line, text-after-"//")` for every line comment, skipping string and
/// char literals — prose that merely *contains* `//` inside a literal (an
/// explain string, a test fixture embedded in a raw string) can never
/// register as a comment, and therefore never as a pragma.
pub fn comment_lines(src: &str) -> Vec<(u32, String)> {
    let chars: Vec<char> = src.chars().collect();
    let n = chars.len();
    let mut out = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    while i < n {
        let c = chars[i];
        if c == '\n' {
            line += 1;
            i += 1;
        } else if c == '/' && i + 1 < n && chars[i + 1] == '/' {
            let start = i + 2;
            let mut j = start;
            while j < n && chars[j] != '\n' {
                j += 1;
            }
            out.push((line, chars[start..j].iter().collect()));
            i = j;
        } else if c == '/' && i + 1 < n && chars[i + 1] == '*' {
            let mut depth = 1u32;
            i += 2;
            while i < n && depth > 0 {
                if chars[i] == '\n' {
                    line += 1;
                    i += 1;
                } else if chars[i] == '/' && i + 1 < n && chars[i + 1] == '*' {
                    depth += 1;
                    i += 2;
                } else if chars[i] == '*' && i + 1 < n && chars[i + 1] == '/' {
                    depth -= 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
        } else if c == '"' {
            i = skip_string(&chars, i, &mut line);
        } else if c == '\'' {
            i = skip_quote(&chars, i, &mut line);
        } else if is_ident_start(c) {
            let start = i;
            while i < n && is_ident_char(chars[i]) {
                i += 1;
            }
            let text: String = chars[start..i].iter().collect();
            if i < n && matches!(text.as_str(), "r" | "b" | "br" | "rb") {
                match chars[i] {
                    '"' if text == "b" => i = skip_string(&chars, i, &mut line),
                    '"' | '#' if text != "b" => i = skip_raw_string(&chars, i, &mut line),
                    '\'' if text == "b" => i = skip_quote(&chars, i, &mut line),
                    _ => {}
                }
            }
        } else {
            i += 1;
        }
    }
    out
}

/// Method names whose single string argument is a key *lookup*.
const WIRE_READ_FNS: &[&str] = &["get", "remove", "contains_key"];

/// Scan `src` for wire-format key usage (L016): string literals in
/// call-argument position, classified as written — `insert("k", v)` or
/// the key slot of a `("k", v)` pair — or read — `get("k")` /
/// `remove("k")` / `contains_key("k")`. The lexer proper drops literal
/// bodies, so this is a raw-source pass reusing the same
/// literal-skipping machinery. Keys are filtered to snake_case
/// identifiers so format strings, error prose, and separators never
/// register. Returns `(is_write, key, line)` triples.
pub fn wire_keys(src: &str) -> Vec<(bool, String, u32)> {
    let chars: Vec<char> = src.chars().collect();
    let n = chars.len();
    let mut out = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    // The most recent identifier and the previous significant character:
    // a key candidate is a string whose preceding character is `(`.
    let mut last_ident = String::new();
    let mut prev_sig = ' ';
    while i < n {
        let c = chars[i];
        if c == '\n' {
            line += 1;
            i += 1;
        } else if c.is_whitespace() {
            i += 1;
        } else if c == '/' && i + 1 < n && chars[i + 1] == '/' {
            while i < n && chars[i] != '\n' {
                i += 1;
            }
        } else if c == '/' && i + 1 < n && chars[i + 1] == '*' {
            let mut depth = 1u32;
            i += 2;
            while i < n && depth > 0 {
                if chars[i] == '\n' {
                    line += 1;
                    i += 1;
                } else if chars[i] == '/' && i + 1 < n && chars[i + 1] == '*' {
                    depth += 1;
                    i += 2;
                } else if chars[i] == '*' && i + 1 < n && chars[i + 1] == '/' {
                    depth -= 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
        } else if c == '"' {
            let open_line = line;
            let in_call = prev_sig == '(';
            let end = skip_string(&chars, i, &mut line);
            if in_call {
                // The body sits between the quotes; escapes disqualify
                // the key at the filter below, so a raw copy suffices.
                let body: String = chars[i + 1..end.saturating_sub(1).max(i + 1)]
                    .iter()
                    .collect();
                if is_wire_key(&body) {
                    let verdict = if WIRE_READ_FNS.contains(&last_ident.as_str()) {
                        Some(false)
                    } else if last_ident == "insert" {
                        Some(true)
                    } else {
                        // A `("k", ...)` pair: the key slot of a JSON
                        // object builder. Anything else (`Str("x")`,
                        // `perr("msg")`) is not a wire key.
                        let mut j = end;
                        while j < n && chars[j].is_whitespace() {
                            j += 1;
                        }
                        (chars.get(j) == Some(&',')).then_some(true)
                    };
                    if let Some(write) = verdict {
                        out.push((write, body, open_line));
                    }
                }
            }
            prev_sig = '"';
            i = end;
        } else if c == '\'' {
            i = skip_quote(&chars, i, &mut line);
            prev_sig = '\'';
        } else if is_ident_start(c) {
            let start = i;
            while i < n && is_ident_char(chars[i]) {
                i += 1;
            }
            let text: String = chars[start..i].iter().collect();
            if i < n && matches!(text.as_str(), "r" | "b" | "br" | "rb") {
                match chars[i] {
                    '"' if text == "b" => {
                        i = skip_string(&chars, i, &mut line);
                        prev_sig = '"';
                        continue;
                    }
                    '"' | '#' if text != "b" => {
                        i = skip_raw_string(&chars, i, &mut line);
                        prev_sig = '"';
                        continue;
                    }
                    '\'' if text == "b" => {
                        i = skip_quote(&chars, i, &mut line);
                        prev_sig = '\'';
                        continue;
                    }
                    _ => {}
                }
            }
            prev_sig = text.chars().last().unwrap_or(' ');
            last_ident = text;
        } else {
            prev_sig = c;
            i += 1;
        }
    }
    out
}

/// A plausible wire key: a snake_case identifier (`cycles`,
/// `stall_cycles`, `ci_half_width`).
fn is_wire_key(s: &str) -> bool {
    let mut it = s.chars();
    match it.next() {
        Some(c) if c.is_ascii_lowercase() || c == '_' => {}
        _ => return false,
    }
    s.chars()
        .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
}

/// A resolved `fn` item: name, declaration line, and the token range of its
/// body (from the opening `{` through the matching `}` inclusive).
#[derive(Debug, Clone)]
pub struct FnSpan {
    pub name: String,
    pub decl_line: u32,
    pub start_line: u32,
    pub end_line: u32,
    pub body: std::ops::Range<usize>,
}

/// Resolve every `fn` item in the token stream, including nested ones.
pub fn fn_spans(toks: &[Tok]) -> Vec<FnSpan> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].is_ident("fn") && toks.get(i + 1).map(|t| t.kind) == Some(TokKind::Ident) {
            let name = toks[i + 1].text.clone();
            let decl_line = toks[i].line;
            // The body brace is the first `{` at paren/bracket depth zero
            // after the signature; a `;` there means a bodyless trait item.
            let mut j = i + 2;
            let mut depth = 0i32;
            let mut open = None;
            while j < toks.len() {
                let t = &toks[j];
                if t.kind == TokKind::Punct {
                    match t.text.as_str() {
                        "(" | "[" => depth += 1,
                        ")" | "]" => depth -= 1,
                        "{" if depth == 0 => {
                            open = Some(j);
                            break;
                        }
                        ";" if depth == 0 => break,
                        _ => {}
                    }
                }
                j += 1;
            }
            if let Some(o) = open {
                let mut braces = 0i32;
                let mut k = o;
                while k < toks.len() {
                    if toks[k].kind == TokKind::Punct {
                        match toks[k].text.as_str() {
                            "{" => braces += 1,
                            "}" => {
                                braces -= 1;
                                if braces == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                    }
                    k += 1;
                }
                let end = k.min(toks.len().saturating_sub(1));
                out.push(FnSpan {
                    name,
                    decl_line,
                    start_line: toks[o].line,
                    end_line: toks[end].line,
                    body: o..(k + 1).min(toks.len()),
                });
                i += 2;
                continue;
            }
        }
        i += 1;
    }
    out
}

/// A named struct field declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FieldDef {
    pub name: String,
    pub ty: String,
    pub line: u32,
    pub public: bool,
}

/// Extract the named fields of `struct <name>`; `None` if the struct is not
/// declared in this token stream, `Some(vec![])` for tuple/unit structs.
pub fn struct_fields(toks: &[Tok], name: &str) -> Option<Vec<FieldDef>> {
    let mut i = 0usize;
    while i + 1 < toks.len() {
        if toks[i].is_ident("struct") && toks[i + 1].is_ident(name) {
            let mut j = i + 2;
            while j < toks.len() {
                match toks[j].text.as_str() {
                    "{" if toks[j].kind == TokKind::Punct => {
                        return Some(parse_fields(toks, j));
                    }
                    "(" | ";" if toks[j].kind == TokKind::Punct => return Some(Vec::new()),
                    _ => j += 1,
                }
            }
            return Some(Vec::new());
        }
        i += 1;
    }
    None
}

/// Enumerate every named-field struct declared in the token stream with
/// its fields. Tuple and unit structs appear with an empty field list.
pub fn all_structs(toks: &[Tok]) -> Vec<(String, u32, Vec<FieldDef>)> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i + 1 < toks.len() {
        if toks[i].is_ident("struct") && toks[i + 1].kind == TokKind::Ident {
            let name = toks[i + 1].text.clone();
            let line = toks[i].line;
            let mut j = i + 2;
            let mut fields = Vec::new();
            while j < toks.len() {
                match toks[j].text.as_str() {
                    "{" if toks[j].kind == TokKind::Punct => {
                        fields = parse_fields(toks, j);
                        break;
                    }
                    "(" | ";" if toks[j].kind == TokKind::Punct => break,
                    _ => j += 1,
                }
            }
            out.push((name, line, fields));
            i = j;
        }
        i += 1;
    }
    out
}

fn parse_fields(toks: &[Tok], open: usize) -> Vec<FieldDef> {
    let mut out = Vec::new();
    let mut i = open + 1;
    loop {
        // Skip attributes and visibility modifiers on the next field.
        loop {
            match toks.get(i) {
                Some(t) if t.is_punct("#") => {
                    // `#[...]` — skip the bracketed group.
                    i += 1;
                    if toks.get(i).map(|t| t.is_punct("[")) == Some(true) {
                        let mut depth = 0i32;
                        while let Some(t) = toks.get(i) {
                            if t.is_punct("[") {
                                depth += 1;
                            } else if t.is_punct("]") {
                                depth -= 1;
                                if depth == 0 {
                                    i += 1;
                                    break;
                                }
                            }
                            i += 1;
                        }
                    }
                }
                Some(t) if t.is_punct(",") => i += 1,
                _ => break,
            }
        }
        let public = match toks.get(i) {
            Some(t) if t.is_ident("pub") => {
                i += 1;
                // `pub(crate)` and friends.
                if toks.get(i).map(|t| t.is_punct("(")) == Some(true) {
                    let mut depth = 0i32;
                    while let Some(t) = toks.get(i) {
                        if t.is_punct("(") {
                            depth += 1;
                        } else if t.is_punct(")") {
                            depth -= 1;
                            if depth == 0 {
                                i += 1;
                                break;
                            }
                        }
                        i += 1;
                    }
                }
                true
            }
            _ => false,
        };
        let (name, line) = match toks.get(i) {
            Some(t) if t.kind == TokKind::Ident => (t.text.clone(), t.line),
            Some(t) if t.is_punct("}") => return out,
            _ => return out,
        };
        i += 1;
        if toks.get(i).map(|t| t.is_punct(":")) != Some(true) {
            return out;
        }
        i += 1;
        // Collect the type: everything up to a `,` or `}` at nesting depth
        // zero, tracking (), [], <> so generic arguments stay attached.
        let mut ty = String::new();
        let mut depth = 0i32;
        while let Some(t) = toks.get(i) {
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    "(" | "[" | "<" => depth += 1,
                    ")" | "]" | ">" => depth -= 1,
                    "," if depth == 0 => break,
                    "}" if depth <= 0 => break,
                    _ => {}
                }
            }
            ty.push_str(&t.text);
            i += 1;
        }
        out.push(FieldDef {
            name,
            ty,
            line,
            public,
        });
        match toks.get(i) {
            Some(t) if t.is_punct(",") => i += 1,
            _ => return out,
        }
    }
}

/// Extract `const NAME: TY = <number>;` declarations (top-level or in
/// impl blocks) whose value is a single numeric literal, optionally
/// negated. Restricting to literals keeps the L005 fingerprint anchored
/// to encoding constants (kind tags, register codes, the format version)
/// and insensitive to test-module consts or formatting churn in compound
/// const expressions.
pub fn numeric_consts(toks: &[Tok]) -> Vec<(String, String, u32)> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i + 1 < toks.len() {
        if toks[i].is_ident("const") && toks[i + 1].kind == TokKind::Ident {
            let name = toks[i + 1].text.clone();
            let line = toks[i + 1].line;
            let mut j = i + 2;
            let mut saw_eq = false;
            let mut value_toks: Vec<&Tok> = Vec::new();
            while let Some(t) = toks.get(j) {
                if t.is_punct(";") {
                    break;
                }
                if saw_eq {
                    value_toks.push(t);
                } else if t.is_punct("=") {
                    saw_eq = true;
                }
                j += 1;
            }
            let numeric = match value_toks.as_slice() {
                [v] => v.kind == TokKind::Num,
                [s, v] => s.is_punct("-") && v.kind == TokKind::Num,
                _ => false,
            };
            if saw_eq && numeric {
                let value: String = value_toks.iter().map(|t| t.text.as_str()).collect();
                out.push((name, value, line));
            }
            i = j;
        }
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_are_stripped() {
        let toks = lex("let s = \"a.unwrap()\"; // .expect()\n/* panic! */ let t = 'x';");
        assert!(toks
            .iter()
            .all(|t| t.text != "unwrap" && t.text != "expect" && t.text != "panic"));
    }

    #[test]
    fn lifetimes_do_not_eat_code() {
        let toks = lex("fn f<'a>(x: &'a u8) -> &'a u8 { x }");
        assert!(toks.iter().any(|t| t.is_ident("x")));
        let spans = fn_spans(&toks);
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].name, "f");
    }

    #[test]
    fn raw_strings_skip() {
        let toks = lex("let r = r#\"has \"quotes\" and .unwrap()\"#; let b = baseline;");
        assert!(toks.iter().any(|t| t.is_ident("baseline")));
        assert!(toks.iter().all(|t| t.text != "unwrap"));
    }

    #[test]
    fn fn_spans_find_nested() {
        let src = "impl X { fn outer(&self) { fn inner() -> u64 { 3 } inner() } }";
        let toks = lex(src);
        let spans = fn_spans(&toks);
        let names: Vec<_> = spans.iter().map(|s| s.name.as_str()).collect();
        assert!(names.contains(&"outer") && names.contains(&"inner"));
    }

    #[test]
    fn struct_fields_extract_names_and_types() {
        let src = "pub struct S { pub a: u64, b: [u8; 3], pub c: Option<u32> }";
        let toks = lex(src);
        let fields = struct_fields(&toks, "S").unwrap();
        assert_eq!(fields.len(), 3);
        assert_eq!(fields[0].name, "a");
        assert_eq!(fields[0].ty, "u64");
        assert!(fields[0].public);
        assert_eq!(fields[1].ty, "[u8;3]");
        assert!(!fields[1].public);
        assert_eq!(fields[2].ty, "Option<u32>");
    }

    #[test]
    fn consts_extract_values() {
        let src = "pub const K_A: u8 = 7;\nconst VER: u32 = 1;\nconst NEG: i8 = -3;";
        let toks = lex(src);
        let consts = numeric_consts(&toks);
        assert_eq!(consts.len(), 3);
        assert_eq!(consts[0].0, "K_A");
        assert_eq!(consts[0].1, "7");
        assert_eq!(consts[1].1, "1");
        assert_eq!(consts[2].1, "-3");
    }

    #[test]
    fn wire_keys_classify_reads_and_writes() {
        let src = r#"
            fn to_json(&self) -> Json {
                let mut m = obj([("cycles", num(self.cycles)), ("cpi", num(self.cpi))]);
                m.insert("stats".to_string(), nested);
                write!(w, "{}", m).unwrap(); // format strings don't count
                Json::Str("cell".to_string());
                m
            }
            fn from_json(v: &Json) -> Self {
                let c = v.get("cycles").unwrap();
                if v.contains_key("cpi") { }
                let s = v.remove("stats");
                let label = other("prose, not a key");
                Self { c, s }
            }
        "#;
        let keys = wire_keys(src);
        let writes: Vec<&str> = keys
            .iter()
            .filter(|(w, _, _)| *w)
            .map(|(_, k, _)| k.as_str())
            .collect();
        let reads: Vec<&str> = keys
            .iter()
            .filter(|(w, _, _)| !*w)
            .map(|(_, k, _)| k.as_str())
            .collect();
        assert_eq!(writes, ["cycles", "cpi", "stats"]);
        assert_eq!(reads, ["cycles", "cpi", "stats"]);
    }

    #[test]
    fn wire_keys_ignore_non_key_strings() {
        let src = r##"
            fn f() {
                starts_with("content-length:");
                perr("configs must be non-empty");
                let r = r#"raw "quoted" body"#;
                assert_eq!(format!("{a}+{b}"), expected);
            }
        "##;
        assert!(wire_keys(src).is_empty());
    }

    #[test]
    fn non_literal_consts_are_not_fingerprinted() {
        // Compound const expressions (arrays, struct literals, byte
        // strings) are formatting-sensitive and excluded from the L005
        // fingerprint; only single numeric literals count.
        let src =
            "const ALL: &[u8] = &[1, 2, 3];\nconst H: [u8; 4] = *b\"ATRC\";\nconst N: u8 = 5;";
        let toks = lex(src);
        let consts = numeric_consts(&toks);
        assert_eq!(consts.len(), 1);
        assert_eq!(consts[0].0, "N");
    }
}
