//! `aurora-lint` CLI.
//!
//! ```text
//! aurora-lint                 # analyze the workspace, exit 1 on findings
//! aurora-lint --explain L002  # print the rationale for a rule
//! aurora-lint --fingerprint   # print the trace-format record file contents
//! aurora-lint --root <dir>    # analyze a different workspace root
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use aurora_lint::config::LintConfig;
use aurora_lint::{analyze, find_root, load_workspace, rules};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut root: Option<PathBuf> = None;
    let mut explain: Option<String> = None;
    let mut fingerprint = false;
    let mut canonical = false;
    let mut list = false;
    let mut i = 0usize;
    while i < args.len() {
        match args[i].as_str() {
            "--root" => {
                i += 1;
                match args.get(i) {
                    Some(p) => root = Some(PathBuf::from(p)),
                    None => return usage("--root needs a path"),
                }
            }
            "--explain" => {
                i += 1;
                match args.get(i) {
                    Some(r) => explain = Some(r.clone()),
                    None => return usage("--explain needs a rule id (e.g. L002)"),
                }
            }
            "--fingerprint" => fingerprint = true,
            "--canonical" => canonical = true,
            "--list" => list = true,
            "--help" | "-h" => return usage(""),
            other => return usage(&format!("unknown argument `{other}`")),
        }
        i += 1;
    }

    if let Some(rule) = explain {
        return match rules::explain(&rule) {
            Some(text) => {
                print!("{text}");
                ExitCode::SUCCESS
            }
            None => {
                eprintln!("aurora-lint: unknown rule `{rule}`");
                ExitCode::FAILURE
            }
        };
    }
    if list {
        for (id, title, _) in rules::RULES {
            println!("{id}  {title}");
        }
        return ExitCode::SUCCESS;
    }

    let root = match root.or_else(|| std::env::current_dir().ok().and_then(|cwd| find_root(&cwd))) {
        Some(r) => r,
        None => {
            eprintln!("aurora-lint: no lint.toml found between here and the filesystem root");
            return ExitCode::FAILURE;
        }
    };

    if fingerprint || canonical {
        let cfg = match LintConfig::load(&root.join("lint.toml")) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("aurora-lint: {e}");
                return ExitCode::FAILURE;
            }
        };
        let ws = match load_workspace(&root, &cfg) {
            Ok(ws) => ws,
            Err(e) => {
                eprintln!("aurora-lint: {e}");
                return ExitCode::FAILURE;
            }
        };
        return match rules::compute_fingerprint(&ws, &cfg) {
            Ok(fp) => {
                if canonical {
                    // Debug view: the exact string the fingerprint hashes,
                    // for diffing when a drift finding looks surprising.
                    println!("{}", fp.canonical);
                    return ExitCode::SUCCESS;
                }
                println!("# Structural fingerprint of the packed trace format.");
                println!("# Re-record with `cargo run -p aurora-lint -- --fingerprint` whenever");
                println!("# the PackedOp layout or codec constants change, and bump");
                println!("# TRACE_FORMAT_VERSION alongside it. See docs/LINTS.md (L005).");
                println!("version = {}", fp.version.unwrap_or(0));
                println!("fingerprint = {:#018x}", fp.hash);
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("aurora-lint: {e}");
                ExitCode::FAILURE
            }
        };
    }

    match analyze(&root) {
        Ok(report) => {
            for f in &report.findings {
                println!("{f}");
            }
            if report.findings.is_empty() {
                println!(
                    "aurora-lint: clean — {} files scanned, {} finding(s) suppressed by pragma",
                    report.files_scanned, report.suppressed
                );
                ExitCode::SUCCESS
            } else {
                println!(
                    "aurora-lint: {} finding(s) across {} files ({} suppressed); \
                     run `aurora-lint --explain <rule>` for rationale",
                    report.findings.len(),
                    report.files_scanned,
                    report.suppressed
                );
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("aurora-lint: {e}");
            ExitCode::FAILURE
        }
    }
}

fn usage(err: &str) -> ExitCode {
    if !err.is_empty() {
        eprintln!("aurora-lint: {err}");
    }
    eprintln!(
        "usage: aurora-lint [--root <dir>] [--explain L0xx] [--fingerprint] [--list]\n\
         \n\
         Walks the workspace rooted at the nearest lint.toml and enforces the\n\
         hot-path, dead-counter, config-coverage and trace-format invariants.\n\
         Exits non-zero when any unsuppressed finding remains."
    );
    if err.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
