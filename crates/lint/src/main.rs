//! `aurora-lint` CLI.
//!
//! ```text
//! aurora-lint                 # analyze the workspace, exit 1 on findings
//! aurora-lint --format sarif  # machine-readable findings on stdout
//! aurora-lint --graph         # dump the transitive hot set with chains
//! aurora-lint --explain L002  # print the rationale for a rule
//! aurora-lint --fingerprint   # print the trace-format record file contents
//! aurora-lint --root <dir>    # analyze a different workspace root
//! aurora-lint --no-cache      # ignore target/aurora-lint.cache
//! aurora-lint --fix           # rewrite stale/malformed pragmas in place
//! aurora-lint --fix --dry-run # print the rewrites as a diff instead
//! aurora-lint --bench <out>   # write analyzer perf baseline JSON to <out>
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use aurora_lint::cache::Cache;
use aurora_lint::config::LintConfig;
use aurora_lint::{analyze_with, cache_key, find_root, fix, load_workspace, output, rules};

#[derive(PartialEq)]
enum Format {
    Text,
    Json,
    Sarif,
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut root: Option<PathBuf> = None;
    let mut explain: Option<String> = None;
    let mut fingerprint = false;
    let mut canonical = false;
    let mut list = false;
    let mut graph = false;
    let mut no_cache = false;
    let mut apply_fix = false;
    let mut dry_run = false;
    let mut bench: Option<PathBuf> = None;
    let mut format = Format::Text;
    let mut i = 0usize;
    while i < args.len() {
        match args[i].as_str() {
            "--fix" => apply_fix = true,
            "--dry-run" => dry_run = true,
            "--bench" => {
                i += 1;
                match args.get(i) {
                    Some(p) => bench = Some(PathBuf::from(p)),
                    None => return usage("--bench needs an output path"),
                }
            }
            "--root" => {
                i += 1;
                match args.get(i) {
                    Some(p) => root = Some(PathBuf::from(p)),
                    None => return usage("--root needs a path"),
                }
            }
            "--explain" => {
                i += 1;
                match args.get(i) {
                    Some(r) => explain = Some(r.clone()),
                    None => return usage("--explain needs a rule id (e.g. L002)"),
                }
            }
            "--format" => {
                i += 1;
                format = match args.get(i).map(String::as_str) {
                    Some("text") => Format::Text,
                    Some("json") => Format::Json,
                    Some("sarif") => Format::Sarif,
                    _ => return usage("--format needs one of: text, json, sarif"),
                };
            }
            "--fingerprint" => fingerprint = true,
            "--canonical" => canonical = true,
            "--list" => list = true,
            "--graph" => graph = true,
            "--no-cache" => no_cache = true,
            "--help" | "-h" => return usage(""),
            other => return usage(&format!("unknown argument `{other}`")),
        }
        i += 1;
    }

    if let Some(rule) = explain {
        return match rules::explain(&rule) {
            Some(text) => {
                print!("{text}");
                ExitCode::SUCCESS
            }
            None => {
                eprintln!("aurora-lint: unknown rule `{rule}`");
                ExitCode::FAILURE
            }
        };
    }
    if list {
        for (id, title, _) in rules::RULES {
            println!("{id}  {title}");
        }
        return ExitCode::SUCCESS;
    }

    let root = match root.or_else(|| std::env::current_dir().ok().and_then(|cwd| find_root(&cwd))) {
        Some(r) => r,
        None => {
            eprintln!("aurora-lint: no lint.toml found between here and the filesystem root");
            return ExitCode::FAILURE;
        }
    };
    let cfg = match LintConfig::load(&root.join("lint.toml")) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("aurora-lint: {e}");
            return ExitCode::FAILURE;
        }
    };

    if fingerprint || canonical {
        let ws = match load_workspace(&root, &cfg) {
            Ok(ws) => ws,
            Err(e) => {
                eprintln!("aurora-lint: {e}");
                return ExitCode::FAILURE;
            }
        };
        return match rules::compute_fingerprint(&ws, &cfg) {
            Ok(fp) => {
                if canonical {
                    // Debug view: the exact string the fingerprint hashes,
                    // for diffing when a drift finding looks surprising.
                    println!("{}", fp.canonical);
                    return ExitCode::SUCCESS;
                }
                println!("# Structural fingerprint of the packed trace format.");
                println!("# Re-record with `cargo run -p aurora-lint -- --fingerprint` whenever");
                println!("# the PackedOp layout or codec constants change, and bump");
                println!("# TRACE_FORMAT_VERSION alongside it. See docs/LINTS.md (L005).");
                println!("version = {}", fp.version.unwrap_or(0));
                println!("fingerprint = {:#018x}", fp.hash);
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("aurora-lint: {e}");
                ExitCode::FAILURE
            }
        };
    }

    if graph {
        let ws = match load_workspace(&root, &cfg) {
            Ok(ws) => ws,
            Err(e) => {
                eprintln!("aurora-lint: {e}");
                return ExitCode::FAILURE;
            }
        };
        print!("{}", rules::graph_report(&ws, &cfg));
        return ExitCode::SUCCESS;
    }

    let cache_path = root.join("target/aurora-lint.cache");
    let key = std::fs::read_to_string(root.join("lint.toml"))
        .map(|t| cache_key(&t))
        .unwrap_or(0);
    let mut cache = if no_cache {
        None
    } else {
        Some(Cache::load(&cache_path, key))
    };
    let started = std::time::Instant::now();
    let report = match analyze_with(&root, &cfg, cache.as_mut()) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("aurora-lint: {e}");
            return ExitCode::FAILURE;
        }
    };
    let elapsed = started.elapsed().as_secs_f64();
    if let Some(c) = &cache {
        c.save(&cache_path);
    }

    if apply_fix {
        let edits = match fix::plan(&root, &report.findings) {
            Ok(e) => e,
            Err(e) => {
                eprintln!("aurora-lint: {e}");
                return ExitCode::FAILURE;
            }
        };
        if dry_run {
            print!("{}", fix::render_diff(&edits));
            eprintln!(
                "aurora-lint --fix --dry-run: {} edit(s) planned",
                edits.len()
            );
            return ExitCode::SUCCESS;
        }
        return match fix::apply(&root, &edits) {
            Ok(files) => {
                eprintln!(
                    "aurora-lint --fix: applied {} edit(s) across {files} file(s); re-run to \
                     verify",
                    edits.len()
                );
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("aurora-lint: {e}");
                ExitCode::FAILURE
            }
        };
    }

    if let Some(out_path) = &bench {
        let rate = if elapsed > 0.0 {
            report.files_scanned as f64 / elapsed
        } else {
            0.0
        };
        let hit_rate = if report.files_scanned > 0 {
            report.cache_hits as f64 / report.files_scanned as f64
        } else {
            0.0
        };
        let json = format!(
            "{{\n  \"lint_baseline\": {{\n    \"files_scanned\": {},\n    \
             \"elapsed_seconds\": {:.6},\n    \"files_per_second\": {:.1},\n    \
             \"cache_hits\": {},\n    \"cache_hit_rate\": {:.3},\n    \"rules\": {},\n    \
             \"findings\": {}\n  }}\n}}\n",
            report.files_scanned,
            elapsed,
            rate,
            report.cache_hits,
            hit_rate,
            rules::RULES.len(),
            report.findings.len()
        );
        if let Err(e) = std::fs::write(out_path, json) {
            eprintln!("aurora-lint: cannot write {}: {e}", out_path.display());
            return ExitCode::FAILURE;
        }
    }

    // Machine formats own stdout; the human summary moves to stderr so a
    // redirect captures a clean document either way.
    match format {
        Format::Json => print!("{}", output::render_json(&report)),
        Format::Sarif => print!("{}", output::render_sarif(&report)),
        Format::Text => {
            for f in &report.findings {
                println!("{f}");
            }
        }
    }
    let summary = |to_stderr: bool, msg: String| {
        if to_stderr {
            eprintln!("{msg}");
        } else {
            println!("{msg}");
        }
    };
    let machine = format != Format::Text;
    if report.findings.is_empty() {
        summary(
            machine,
            format!(
                "aurora-lint: clean — {} files scanned, {} finding(s) suppressed by pragma",
                report.files_scanned, report.suppressed
            ),
        );
        ExitCode::SUCCESS
    } else {
        summary(
            machine,
            format!(
                "aurora-lint: {} finding(s) across {} files ({} suppressed); \
                 run `aurora-lint --explain <rule>` for rationale",
                report.findings.len(),
                report.files_scanned,
                report.suppressed
            ),
        );
        ExitCode::FAILURE
    }
}

fn usage(err: &str) -> ExitCode {
    if !err.is_empty() {
        eprintln!("aurora-lint: {err}");
    }
    eprintln!(
        "usage: aurora-lint [--root <dir>] [--format text|json|sarif] [--graph]\n\
         \x20                  [--explain L0xx] [--fingerprint] [--list] [--no-cache]\n\
         \x20                  [--fix [--dry-run]] [--bench <out.json>]\n\
         \n\
         Parses the workspace rooted at the nearest lint.toml, builds the\n\
         cross-crate call graph, and enforces the hot-path, dead-counter,\n\
         config-coverage, trace-format, determinism and unit-safety\n\
         invariants. Hot-path and determinism rules propagate transitively\n\
         from the roots declared in lint.toml. Exits non-zero when any\n\
         unsuppressed finding remains."
    );
    if err.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
