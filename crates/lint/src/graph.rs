//! Workspace call graph: symbol index, receiver-chain resolution, and
//! reachability from declared roots.
//!
//! Resolution is heuristic by design (no type inference engine): a
//! method call resolves through the receiver's *chain descriptor* — the
//! `self.f:obs.m:as_deref_mut.some` strings recorded by
//! [`facts`] — against struct field types and method
//! return types harvested from the whole workspace. When the receiver
//! cannot be typed, the call falls back to name matching scoped
//! same-file → same-crate → workspace-unique, *except* for well-known
//! std method names, which never resolve to workspace functions by name
//! alone. The `// lint:extern` pragma marks a line's calls as
//! deliberately unresolvable (dynamic dispatch, function pointers).
//!
//! Over-approximation (an edge that does not exist at runtime) costs a
//! spurious hot function, which is visible and fixable; *under*-
//! approximation would silently skip real hot code — so ties err toward
//! adding edges.

use std::collections::{HashMap, HashSet};

use crate::facts::{self, CallFact, Event, FileFacts};

/// Identifies a function: (file index, index into that file's `fns`).
pub type FnId = (usize, usize);

/// Method names resolved as type-preserving std calls when the receiver
/// type is not a workspace type with a matching method.
const STD_IDENTITY: &[&str] = &[
    "as_ref",
    "as_mut",
    "as_deref",
    "as_deref_mut",
    "borrow",
    "borrow_mut",
    "by_ref",
    "clone",
    "cloned",
    "copied",
    "iter",
    "iter_mut",
    "into_iter",
    "take",
    "to_owned",
];

/// Method names that unwrap one `Option`/`Result`/smart-pointer layer.
const STD_UNWRAP: &[&str] = &[
    "unwrap",
    "expect",
    "unwrap_or",
    "unwrap_or_else",
    "unwrap_or_default",
];

/// Common std method names: calls on *untyped* receivers with these
/// names never fall back to workspace name matching (a `.len()` on an
/// unknown receiver must not pull `PackedTrace::len` into the graph).
const STD_METHODS: &[&str] = &[
    "abs",
    "all",
    "and_then",
    "any",
    "as_bytes",
    "as_slice",
    "as_str",
    "bytes",
    "chain",
    "chars",
    "checked_add",
    "checked_div",
    "checked_mul",
    "checked_sub",
    "chunks",
    "clamp",
    "clear",
    "cmp",
    "collect",
    "compare_exchange",
    "compare_exchange_weak",
    "contains",
    "contains_key",
    "copy_from_slice",
    "count",
    "count_ones",
    "dedup",
    "drain",
    "entry",
    "enumerate",
    "eq",
    "err",
    "extend",
    "fetch_add",
    "fetch_and",
    "fetch_or",
    "fetch_sub",
    "fetch_xor",
    "fill",
    "filter",
    "filter_map",
    "find",
    "find_map",
    "first",
    "flat_map",
    "flatten",
    "flush",
    "fmt",
    "fold",
    "for_each",
    "get",
    "get_mut",
    "get_or_insert_with",
    "hash",
    "insert",
    "inspect",
    "is_empty",
    "is_err",
    "is_nan",
    "is_none",
    "is_ok",
    "is_power_of_two",
    "is_some",
    "join",
    "keys",
    "last",
    "leading_zeros",
    "len",
    "lines",
    "load",
    "lock",
    "map",
    "map_or",
    "map_or_else",
    "max",
    "max_by",
    "max_by_key",
    "min",
    "min_by",
    "min_by_key",
    "next",
    "next_power_of_two",
    "nth",
    "ok",
    "ok_or",
    "or_else",
    "or_insert",
    "or_insert_with",
    "parse",
    "partial_cmp",
    "peek",
    "peekable",
    "pop",
    "pop_back",
    "pop_front",
    "position",
    "pow",
    "product",
    "push",
    "push_back",
    "push_front",
    "read",
    "read_exact",
    "remove",
    "replace",
    "retain",
    "rev",
    "rem_euclid",
    "rotate_left",
    "rotate_right",
    "saturating_add",
    "saturating_mul",
    "saturating_sub",
    "set",
    "signum",
    "skip",
    "skip_while",
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "spawn",
    "split",
    "split_at",
    "splitn",
    "starts_with",
    "step_by",
    "store",
    "strip_prefix",
    "strip_suffix",
    "sum",
    "swap",
    "take_while",
    "then",
    "then_some",
    "to_be_bytes",
    "to_le_bytes",
    "to_string",
    "to_vec",
    "trailing_zeros",
    "trim",
    "try_from",
    "try_into",
    "values",
    "values_mut",
    "windows",
    "wrapping_add",
    "wrapping_mul",
    "wrapping_sub",
    "write",
    "write_all",
    "zip",
];

pub struct Graph<'a> {
    pub files: &'a [(String, FileFacts)],
    /// Crate name per file (`crates/<name>/...` → `<name>`, else "").
    crates: Vec<String>,
    /// (self type, method name) → definitions, tests excluded.
    methods: HashMap<(String, String), Vec<FnId>>,
    /// Free fn name → definitions, tests excluded.
    free: HashMap<String, Vec<FnId>>,
    /// Any non-test fn by bare name (fallback resolution).
    by_name: HashMap<String, Vec<FnId>>,
    /// Struct name → (file, struct index) definitions.
    structs: HashMap<String, Vec<(usize, usize)>>,
    /// `// lint:extern`-marked (file, line) pairs: calls there resolve
    /// to nothing on purpose.
    extern_lines: HashSet<(usize, u32)>,
}

impl<'a> Graph<'a> {
    pub fn new(files: &'a [(String, FileFacts)], extern_lines: HashSet<(usize, u32)>) -> Graph<'a> {
        let crates = files.iter().map(|(rel, _)| crate_of(rel)).collect();
        let mut methods: HashMap<(String, String), Vec<FnId>> = HashMap::new();
        let mut free: HashMap<String, Vec<FnId>> = HashMap::new();
        let mut by_name: HashMap<String, Vec<FnId>> = HashMap::new();
        let mut structs: HashMap<String, Vec<(usize, usize)>> = HashMap::new();
        for (fi, (_, facts)) in files.iter().enumerate() {
            for (si, (name, _, _)) in facts.structs.iter().enumerate() {
                structs.entry(name.clone()).or_default().push((fi, si));
            }
            for (ki, f) in facts.fns.iter().enumerate() {
                if f.in_test {
                    continue;
                }
                let id = (fi, ki);
                if f.self_ty.is_empty() {
                    free.entry(f.name.clone()).or_default().push(id);
                } else {
                    methods
                        .entry((f.self_ty.clone(), f.name.clone()))
                        .or_default()
                        .push(id);
                }
                by_name.entry(f.name.clone()).or_default().push(id);
            }
        }
        Graph {
            files,
            crates,
            methods,
            free,
            by_name,
            structs,
            extern_lines,
        }
    }

    pub fn fn_facts(&self, id: FnId) -> &'a facts::FnFacts {
        &self.files[id.0].1.fns[id.1]
    }

    pub fn rel(&self, id: FnId) -> &'a str {
        &self.files[id.0].0
    }

    /// All fns (non-test) defined in the file whose path ends with
    /// `suffix`, or named `name` there ("Type::name" constrains the type).
    pub fn fns_in_file(&self, suffix: &str) -> Vec<FnId> {
        let mut out = Vec::new();
        for (fi, (rel, facts)) in self.files.iter().enumerate() {
            if !path_matches(rel, suffix) {
                continue;
            }
            for (ki, f) in facts.fns.iter().enumerate() {
                if !f.in_test {
                    out.push((fi, ki));
                }
            }
        }
        out
    }

    /// Resolve a root declaration ("name" or "Type::name") within a file.
    pub fn find_root(&self, file_suffix: &str, root: &str) -> Vec<FnId> {
        let (want_ty, want_name) = match root.split_once("::") {
            Some((t, n)) => (Some(t), n),
            None => (None, root),
        };
        let mut out = Vec::new();
        for (fi, (rel, facts)) in self.files.iter().enumerate() {
            if !path_matches(rel, file_suffix) {
                continue;
            }
            for (ki, f) in facts.fns.iter().enumerate() {
                if f.in_test || f.name != want_name {
                    continue;
                }
                if let Some(t) = want_ty {
                    if f.self_ty != t {
                        continue;
                    }
                }
                out.push((fi, ki));
            }
        }
        out
    }

    /// Resolve a chain descriptor to a concrete type string.
    pub fn resolve_type(&self, chain: &str, file: usize, self_ty: &str) -> Option<String> {
        let mut parts = chain.split('.');
        let start = parts.next()?;
        let mut cur: String = if start == "self" {
            if self_ty.is_empty() {
                return None;
            }
            self_ty.to_string()
        } else if let Some(t) = start.strip_prefix("t:") {
            facts::unesc(t)
        } else if let Some(f) = start.strip_prefix("fn:") {
            let ids = self.resolve_free(f, file);
            let ret = ids
                .first()
                .map(|id| self.fn_facts(*id).ret.clone())
                .unwrap_or_default();
            if ret.is_empty() {
                return None;
            }
            ret
        } else {
            return None;
        };
        for segm in parts {
            let ty = peel_refs(&cur);
            cur = if let Some(fname) = segm.strip_prefix("f:") {
                self.field_type(head(ty), fname, file)?
            } else if let Some(mname) = segm.strip_prefix("m:") {
                self.method_result(ty, mname, file)?
            } else if segm == "idx" || segm == "elem" {
                elem_type(ty)?
            } else if segm == "some" {
                unwrap_wrapper(ty).to_string()
            } else {
                return None;
            };
        }
        Some(cur)
    }

    fn field_type(&self, ty_head: &str, fname: &str, file: usize) -> Option<String> {
        let defs = self.structs.get(ty_head)?;
        let pick = defs
            .iter()
            .find(|(fi, _)| self.crates[*fi] == self.crates[file])
            .or_else(|| defs.first())?;
        let (fi, si) = *pick;
        self.files[fi].1.structs[si]
            .2
            .iter()
            .find(|f| f.name == fname)
            .map(|f| f.ty.clone())
    }

    fn method_result(&self, ty: &str, mname: &str, file: usize) -> Option<String> {
        // Workspace methods take priority over the std tables so types
        // like `PackedTrace::len` keep their declared signatures.
        if let Some(ids) = self.methods.get(&(head(ty).to_string(), mname.to_string())) {
            if let Some(id) = ids
                .iter()
                .find(|id| self.crates[id.0] == self.crates[file])
                .or_else(|| ids.first())
            {
                let ret = &self.fn_facts(*id).ret;
                if !ret.is_empty() {
                    return Some(ret.clone());
                }
                return None;
            }
        }
        if STD_IDENTITY.contains(&mname) {
            return Some(ty.to_string());
        }
        if STD_UNWRAP.contains(&mname) {
            return Some(unwrap_wrapper(ty).to_string());
        }
        None
    }

    fn resolve_free(&self, name: &str, file: usize) -> Vec<FnId> {
        scope_pick(self.free.get(name), file, &self.crates)
    }

    /// Resolve one call fact into callee candidates.
    pub fn resolve_call(&self, call: &CallFact, id: FnId) -> Vec<FnId> {
        let file = id.0;
        if self.extern_lines.contains(&(file, call.line())) {
            return Vec::new();
        }
        let caller = self.fn_facts(id);
        match call {
            CallFact::Free { name, .. } => self.resolve_free(name, file),
            CallFact::Qualified { ty, name, .. } => {
                let ty = if ty == "Self" { &caller.self_ty } else { ty };
                scope_pick(
                    self.methods.get(&(ty.clone(), name.clone())),
                    file,
                    &self.crates,
                )
            }
            CallFact::Method { chain, name, .. } => {
                match self.resolve_type(chain, file, &caller.self_ty) {
                    Some(ty) => scope_pick(
                        self.methods
                            .get(&(head(peel_refs(&ty)).to_string(), name.clone())),
                        file,
                        &self.crates,
                    ),
                    None => {
                        if STD_METHODS.contains(&name.as_str())
                            || STD_IDENTITY.contains(&name.as_str())
                            || STD_UNWRAP.contains(&name.as_str())
                        {
                            return Vec::new();
                        }
                        // Untyped fallback: same file, then same crate,
                        // then workspace if unambiguous.
                        let cands = self.by_name.get(name.as_str());
                        scope_pick(cands, file, &self.crates)
                    }
                }
            }
        }
    }

    /// All outgoing edges of `id`: resolved calls plus `Index`/`IndexMut`
    /// impls reached through `[]` sugar.
    pub fn callees(&self, id: FnId) -> Vec<FnId> {
        let f = self.fn_facts(id);
        let mut out = Vec::new();
        for c in &f.calls {
            out.extend(self.resolve_call(c, id));
        }
        for ev in &f.events {
            if let Event::IndexOp { chain, line } = ev {
                if self.extern_lines.contains(&(id.0, *line)) {
                    continue;
                }
                if let Some(ty) = self.resolve_type(chain, id.0, &f.self_ty) {
                    let h = head(peel_refs(&ty)).to_string();
                    for m in ["index", "index_mut"] {
                        out.extend(scope_pick(
                            self.methods.get(&(h.clone(), m.to_string())),
                            id.0,
                            &self.crates,
                        ));
                    }
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// BFS from `roots`; returns each reached fn's discovery parent
    /// (roots map to themselves).
    pub fn reach(&self, roots: &[FnId]) -> HashMap<FnId, FnId> {
        let mut parent: HashMap<FnId, FnId> = HashMap::new();
        let mut queue: Vec<FnId> = Vec::new();
        for &r in roots {
            if parent.insert(r, r).is_none() {
                queue.push(r);
            }
        }
        let mut qi = 0usize;
        while qi < queue.len() {
            let cur = queue[qi];
            qi += 1;
            for next in self.callees(cur) {
                if let std::collections::hash_map::Entry::Vacant(e) = parent.entry(next) {
                    e.insert(cur);
                    queue.push(next);
                }
            }
        }
        parent
    }

    /// Root→leaf chain of qualified names for a reached fn.
    pub fn chain_to(&self, parent: &HashMap<FnId, FnId>, id: FnId) -> Vec<String> {
        let mut rev = vec![id];
        let mut cur = id;
        while let Some(&p) = parent.get(&cur) {
            if p == cur {
                break;
            }
            rev.push(p);
            cur = p;
        }
        rev.reverse();
        rev.iter()
            .map(|id| self.fn_facts(*id).qual_name())
            .collect()
    }
}

/// Scoped candidate pick: same file, else same crate, else all-if-same-
/// crate-unique, else workspace-wide only when unambiguous.
fn scope_pick(cands: Option<&Vec<FnId>>, file: usize, crates: &[String]) -> Vec<FnId> {
    let cands = match cands {
        Some(c) => c,
        None => return Vec::new(),
    };
    let same_file: Vec<FnId> = cands.iter().copied().filter(|id| id.0 == file).collect();
    if !same_file.is_empty() {
        return same_file;
    }
    let same_crate: Vec<FnId> = cands
        .iter()
        .copied()
        .filter(|id| crates[id.0] == crates[file])
        .collect();
    if !same_crate.is_empty() {
        return same_crate;
    }
    let distinct: HashSet<&str> = cands.iter().map(|id| crates[id.0].as_str()).collect();
    if distinct.len() == 1 {
        return cands.clone();
    }
    Vec::new()
}

/// `crates/<name>/...` → `<name>`; anything else shares one scope.
pub fn crate_of(rel: &str) -> String {
    let rel = rel.replace('\\', "/");
    let mut it = rel.split('/');
    if it.next() == Some("crates") {
        if let Some(name) = it.next() {
            return name.to_string();
        }
    }
    String::new()
}

/// Path suffix match on `/`-separated components.
pub fn path_matches(rel: &str, suffix: &str) -> bool {
    let rel = rel.replace('\\', "/");
    rel == suffix || rel.ends_with(&format!("/{suffix}"))
}

/// Strip reference/`mut`/`impl`/`dyn`/smart-pointer wrappers.
pub fn peel_refs(mut t: &str) -> &str {
    loop {
        let before = t;
        t = t.trim();
        if let Some(r) = t.strip_prefix('&') {
            t = r;
            continue;
        }
        for kw in ["mut", "impl", "dyn"] {
            if let Some(r) = t.strip_prefix(kw) {
                if r.starts_with(' ')
                    || r.starts_with('&')
                    || r.starts_with('[')
                    || r.starts_with(char::is_uppercase)
                {
                    t = r.trim_start();
                }
            }
        }
        for w in ["Box", "Rc", "Arc", "Cell", "RefCell"] {
            if let Some(inner) = generic_inner(t, w) {
                t = inner;
            }
        }
        if t == before {
            return t;
        }
    }
}

/// For `Head<inner>` (exactly, trailing `>` matched) return `inner`.
fn generic_inner<'s>(t: &'s str, head: &str) -> Option<&'s str> {
    let rest = t.strip_prefix(head)?;
    let rest = rest.strip_prefix('<')?;
    if !t.ends_with('>') {
        return None;
    }
    // The prefix's `<` must match the final `>`.
    let inner = &rest[..rest.len() - 1];
    let mut depth = 0i32;
    for c in inner.chars() {
        match c {
            '<' => depth += 1,
            '>' => {
                depth -= 1;
                if depth < 0 {
                    return None;
                }
            }
            _ => {}
        }
    }
    Some(inner)
}

/// The head identifier of a type: last path segment before any generics.
pub fn head(t: &str) -> &str {
    let t = t.trim();
    let end = t
        .find(|c: char| !(c.is_alphanumeric() || c == '_' || c == ':'))
        .unwrap_or(t.len());
    let path = &t[..end];
    path.rsplit("::").next().unwrap_or(path)
}

/// The element type of a slice/array/Vec/VecDeque.
fn elem_type(t: &str) -> Option<String> {
    let t = peel_refs(t);
    if let Some(rest) = t.strip_prefix('[') {
        let end = rest.find([';', ']']).unwrap_or(rest.len());
        return Some(rest[..end].trim().to_string());
    }
    for w in ["Vec", "VecDeque"] {
        if let Some(inner) = generic_inner(t, w) {
            return Some(first_generic_arg(inner));
        }
    }
    None
}

/// Unwrap one `Option<T>`/`Result<T, E>` layer (path-prefixed `Result`s
/// included); other types pass through unchanged.
fn unwrap_wrapper(t: &str) -> &str {
    let t = peel_refs(t);
    if let Some(inner) = generic_inner(t, "Option") {
        return peel_refs(inner);
    }
    // `Result<T, E>` / `io::Result<T>` / `std::io::Result<T>`.
    if let Some(at) = t.find("Result<") {
        let prefix_ok = at == 0 || t[..at].ends_with("::");
        if prefix_ok && t.ends_with('>') {
            let inner = &t[at + "Result<".len()..t.len() - 1];
            let first = first_arg_slice(inner);
            return peel_refs(first);
        }
    }
    t
}

fn first_arg_slice(inner: &str) -> &str {
    let mut depth = 0i32;
    for (i, c) in inner.char_indices() {
        match c {
            '<' | '(' | '[' => depth += 1,
            '>' | ')' | ']' => depth -= 1,
            ',' if depth == 0 => return inner[..i].trim(),
            _ => {}
        }
    }
    inner.trim()
}

fn first_generic_arg(inner: &str) -> String {
    first_arg_slice(inner).to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::{all_structs, lex, numeric_consts};
    use crate::parser::parse_file;

    fn mk(files: &[(&str, &str)]) -> Vec<(String, FileFacts)> {
        files
            .iter()
            .map(|(rel, src)| {
                let toks = lex(src);
                let parsed = parse_file(&toks);
                (
                    rel.to_string(),
                    facts::extract(&parsed.fns, all_structs(&toks), numeric_consts(&toks)),
                )
            })
            .collect()
    }

    fn find(g: &Graph, name: &str) -> FnId {
        for (fi, (_, f)) in g.files.iter().enumerate() {
            for (ki, fnf) in f.fns.iter().enumerate() {
                if fnf.name == name {
                    return (fi, ki);
                }
            }
        }
        panic!("no fn {name}")
    }

    #[test]
    fn type_peeling() {
        assert_eq!(peel_refs("&mut MachineConfig"), "MachineConfig");
        assert_eq!(peel_refs("&Option<Box<Observer>>"), "Option<Box<Observer>>");
        assert_eq!(peel_refs("Box<Observer>"), "Observer");
        assert_eq!(head("io::Result<PackedTrace>"), "Result");
        assert_eq!(unwrap_wrapper("Option<Box<Observer>>"), "Observer");
        assert_eq!(unwrap_wrapper("io::Result<PackedTrace>"), "PackedTrace");
        assert_eq!(elem_type("&[PackedOp]").as_deref(), Some("PackedOp"));
        assert_eq!(elem_type("Vec<TraceOp>").as_deref(), Some("TraceOp"));
    }

    #[test]
    fn transitive_resolution_across_files() {
        let files = mk(&[
            (
                "crates/core/src/sim.rs",
                "pub struct Simulator { obs: Option<Box<Observer>>, trace: PackedTrace }\n\
                 impl Simulator { pub fn feed(&mut self) {\n\
                   if let Some(o) = self.obs.as_deref_mut() { o.record(1); }\n\
                   for op in self.trace.records() { op.unpack(); }\n\
                 } }",
            ),
            (
                "crates/core/src/obs.rs",
                "pub struct Observer { n: u64 }\nimpl Observer { pub fn record(&mut self, x: u64) { self.n += x; } }",
            ),
            (
                "crates/isa/src/packed.rs",
                "pub struct PackedOp { pc: u32 }\npub struct PackedTrace { ops: Vec<PackedOp> }\n\
                 impl PackedTrace { pub fn records(&self) -> &[PackedOp] { &self.ops } }\n\
                 impl PackedOp { pub fn unpack(&self) -> u32 { self.pc } }",
            ),
        ]);
        let g = Graph::new(&files, HashSet::new());
        let feed = find(&g, "feed");
        let reach = g.reach(&[feed]);
        let record = find(&g, "record");
        let unpack = find(&g, "unpack");
        assert!(reach.contains_key(&record), "record not reached");
        assert!(reach.contains_key(&unpack), "unpack not reached");
        // `op.unpack()` sits lexically inside `feed`, so the shortest
        // parent chain is the direct edge — `records` is a separate edge.
        let chain = g.chain_to(&reach, unpack);
        assert_eq!(
            chain,
            vec![
                "Simulator::feed".to_string(),
                "PackedOp::unpack".to_string()
            ]
        );
        let rec_chain = g.chain_to(&reach, record);
        assert_eq!(
            rec_chain,
            vec![
                "Simulator::feed".to_string(),
                "Observer::record".to_string()
            ]
        );
    }

    #[test]
    fn std_names_do_not_resolve_on_unknown_receivers() {
        let files = mk(&[
            (
                "crates/a/src/x.rs",
                "fn f(q: Mystery) { q.len(); }",
            ),
            (
                "crates/isa/src/packed.rs",
                "pub struct PackedTrace { ops: Vec<u8> }\nimpl PackedTrace { pub fn len(&self) -> usize { self.ops.len() } }",
            ),
        ]);
        let g = Graph::new(&files, HashSet::new());
        let f = find(&g, "f");
        assert!(g.callees(f).is_empty());
    }

    #[test]
    fn lint_extern_cuts_edges() {
        let files = mk(&[(
            "crates/a/src/x.rs",
            "fn root() { helper(); }\nfn helper() {}",
        )]);
        let mut externs = HashSet::new();
        externs.insert((0usize, 1u32)); // the `helper()` call line
        let g = Graph::new(&files, externs);
        let root = find(&g, "root");
        assert!(g.callees(root).is_empty());
        let g2 = Graph::new(&files, HashSet::new());
        assert_eq!(g2.callees(find(&g2, "root")).len(), 1);
    }

    #[test]
    fn index_sugar_reaches_user_index_impls() {
        let files = mk(&[(
            "crates/core/src/stats.rs",
            "pub struct Breakdown { v: [u64; 7] }\npub struct Stats { pub stalls: Breakdown }\n\
             impl Index<Kind> for Breakdown { fn index(&self, k: Kind) -> &u64 { &self.v } }\n\
             pub struct Sim { stats: Stats }\n\
             impl Sim { fn hot(&mut self, k: Kind) -> u64 { self.stats.stalls[k] } }",
        )]);
        let g = Graph::new(&files, HashSet::new());
        let hot = find(&g, "hot");
        let index = find(&g, "index");
        assert!(g.callees(hot).contains(&index));
    }

    #[test]
    fn closure_body_calls_belong_to_enclosing_fn() {
        let files = mk(&[(
            "crates/mem/src/stream.rs",
            "pub struct Biu;\nimpl Biu { pub fn request(&mut self) {} }\n\
             pub struct Sim { biu: Biu }\n\
             impl Sim { fn hot(&mut self) { let biu = &mut self.biu; deepen(|_l| { biu.request(); }); } }\n\
             fn deepen(f: impl FnMut(u32)) {}",
        )]);
        let g = Graph::new(&files, HashSet::new());
        let hot = find(&g, "hot");
        let req = find(&g, "request");
        assert!(g.callees(hot).contains(&req), "{:?}", g.callees(hot));
    }
}
