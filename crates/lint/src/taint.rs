//! Taint propagation for L015: untrusted input reaching size-shaped
//! sinks.
//!
//! The domain is a bitmask per value: bit *i* means "may derive from
//! parameter *i* of the enclosing function", and [`ROOT_BIT`] means "may
//! derive from the return value of a function that (transitively)
//! returns untrusted input". One walker serves two modes:
//!
//! - **Summary mode** ([`ret_taint_of`]): seed each parameter with its
//!   own bit and collect the join of all return paths — the
//!   parameter→return flow mask cached per function by the deep phase.
//! - **Detection mode** ([`run`] with a non-zero `live` mask): seed the
//!   parameters the interprocedural worklist marked tainted, record
//!   every catalogued sink a live-tainted value reaches, and report the
//!   join of return masks so the caller can propagate "returns
//!   untrusted" upward.
//!
//! The analysis tracks *magnitude* taint, which is what the catalogued
//! sinks (allocation sizes, indices, loop bounds, cell-count products)
//! consume. That choice drives the sanitizer set: a dominating upper
//! bound (`t < LIMIT`, `t.len() <= LIMIT` with an early return,
//! `.min(limit)`, `.clamp(..)`) or a range-validating `validate()?`
//! clears a value, because a bounded magnitude cannot over-allocate.
//! Deliberate imprecisions (documented in `docs/LINTS.md`): taint does
//! not follow receiver fields into a callee's `self`, match arms join
//! without per-arm refinement, and a guard's limit expression is assumed
//! clean unless it visibly mentions a tainted local.

use crate::ast::{BinOp, Block, Expr, PFn, Stmt};

/// Flags a value derived from the return of a function that returns
/// untrusted input, independent of any parameter of the current fn.
pub const ROOT_BIT: u64 = 1 << 63;

/// Parameters beyond this index share the last bit.
const MAX_PARAM_BIT: usize = 62;

/// The bit representing parameter `i`.
pub fn param_bit(i: usize) -> u64 {
    1u64 << i.min(MAX_PARAM_BIT)
}

/// Interprocedural call model. Returns `Some(mask)` when the call site
/// resolves to workspace functions with known summaries (the mask is the
/// result's taint), or `None` when unresolved — the walker then falls
/// back to "any tainted input taints the result". Implementations also
/// observe argument masks to drive worklist propagation.
pub trait CallModel {
    fn call(&mut self, name: &str, line: u32, recv: u64, args: &[u64]) -> Option<u64>;
}

/// The model with no interprocedural knowledge.
pub struct OpaqueCalls;

impl CallModel for OpaqueCalls {
    fn call(&mut self, _: &str, _: u32, _: u64, _: &[u64]) -> Option<u64> {
        None
    }
}

/// One catalogued sink reached by a live-tainted value.
#[derive(Debug, Clone)]
pub struct SinkHit {
    /// What kind of sink, human-readable ("allocation size", ...).
    pub what: &'static str,
    pub line: u32,
}

/// Result of walking one function body.
pub struct TaintOut {
    /// Join of every `return`/tail-expression mask.
    pub ret: u64,
    /// Sinks reached by live-tainted values (empty in summary mode).
    pub sinks: Vec<SinkHit>,
}

/// Walk `f` with `param_masks` seeding the parameters (index-aligned
/// with `f.params`, missing entries clean). `live` selects which bits
/// count as tainted when recording sinks; pass `0` to skip sink
/// detection entirely (summary mode).
pub fn run(f: &PFn, param_masks: &[u64], live: u64, model: &mut dyn CallModel) -> TaintOut {
    let mut tf = TaintFlow {
        env: Vec::new(),
        model,
        live,
        sinks: Vec::new(),
        ret: 0,
    };
    for (i, p) in f.params.iter().enumerate() {
        let m = param_masks.get(i).copied().unwrap_or(0);
        tf.env.push((p.name.clone(), m));
    }
    let mut tail = 0u64;
    for s in &f.body {
        tail = tf.visit_stmt(s);
    }
    if let Some(Stmt::Expr(e)) = f.body.last() {
        if !matches!(e, Expr::Return(_)) {
            tf.ret |= tail;
        }
    }
    TaintOut {
        ret: tf.ret,
        sinks: tf.sinks,
    }
}

/// Parameter→return flow summary: bit *i* set when parameter *i* may
/// flow into the return value.
pub fn ret_taint_of(f: &PFn, model: &mut dyn CallModel) -> u64 {
    let masks: Vec<u64> = (0..f.params.len()).map(param_bit).collect();
    run(f, &masks, 0, model).ret & !ROOT_BIT
}

/// Container methods that fold their arguments' taint into the receiver.
const GROWS_RECV: &[&str] = &[
    "push",
    "push_back",
    "push_front",
    "insert",
    "extend",
    "append",
];

struct TaintFlow<'a> {
    env: Vec<(String, u64)>,
    model: &'a mut dyn CallModel,
    live: u64,
    sinks: Vec<SinkHit>,
    ret: u64,
}

impl<'a> TaintFlow<'a> {
    fn lookup(&self, name: &str) -> u64 {
        self.env
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .map(|&(_, m)| m)
            .unwrap_or(0)
    }

    fn set(&mut self, name: &str, m: u64) {
        if let Some(slot) = self.env.iter_mut().rev().find(|(n, _)| n == name) {
            slot.1 = m;
        } else {
            self.env.push((name.to_string(), m));
        }
    }

    fn or_into(&mut self, name: &str, m: u64) {
        let old = self.lookup(name);
        self.set(name, old | m);
    }

    fn hit(&mut self, what: &'static str, mask: u64, line: u32) {
        if mask & self.live != 0 {
            self.sinks.push(SinkHit { what, line });
        }
    }

    /// Visit a block in its own scope; returns the tail expression mask.
    fn visit_block(&mut self, b: &Block) -> u64 {
        let mark = self.env.len();
        let mut tail = 0u64;
        for s in b {
            tail = self.visit_stmt(s);
        }
        self.env.truncate(mark);
        tail
    }

    fn visit_stmt(&mut self, s: &Stmt) -> u64 {
        match s {
            Stmt::Let(l) => {
                let m = match &l.init {
                    Some(init) => self.eval(init),
                    None => 0,
                };
                if let Some(else_b) = &l.else_block {
                    self.visit_block(else_b);
                }
                // A tainted initializer taints every binding its pattern
                // introduces, whole or not: destructuring attacker data
                // yields attacker data.
                for b in &l.bindings {
                    self.env.push((b.name.clone(), m));
                }
                0
            }
            Stmt::Expr(e) => self.eval(e),
        }
    }

    /// Evaluate an expression's taint mask. Side-effectful: updates the
    /// environment, records sinks, joins return masks. Each expression
    /// node is visited exactly once.
    fn eval(&mut self, e: &Expr) -> u64 {
        match e {
            Expr::Lit(_) | Expr::Num { .. } | Expr::SelfVal(_) | Expr::Opaque(_) => 0,
            Expr::Path { segs, .. } => match segs.as_slice() {
                [single] => self.lookup(single),
                _ => 0,
            },
            Expr::Field { base, .. } => self.eval(base),
            Expr::Call { callee, args, line } => {
                let argm: Vec<u64> = args.iter().map(|a| self.eval(a)).collect();
                let name = match callee.as_ref() {
                    Expr::Path { segs, .. } => segs.last().map(String::as_str).unwrap_or(""),
                    _ => "",
                };
                if name == "with_capacity" {
                    self.hit(
                        "allocation size (`with_capacity`)",
                        argm.first().copied().unwrap_or(0),
                        *line,
                    );
                }
                let fallback = argm.iter().fold(0, |a, &b| a | b);
                match self.model.call(name, *line, 0, &argm) {
                    Some(m) => m,
                    None => fallback,
                }
            }
            Expr::MethodCall {
                recv,
                name,
                args,
                line,
            } => {
                let rm = self.eval(recv);
                let argm: Vec<u64> = args.iter().map(|a| self.eval(a)).collect();
                let joined = argm.iter().fold(0, |a, &b| a | b);
                match name.as_str() {
                    "reserve" | "reserve_exact" => {
                        self.hit(
                            "allocation size (`reserve`)",
                            argm.first().copied().unwrap_or(0),
                            *line,
                        );
                    }
                    "with_capacity" => {
                        self.hit(
                            "allocation size (`with_capacity`)",
                            argm.first().copied().unwrap_or(0),
                            *line,
                        );
                    }
                    _ => {}
                }
                // `stream.read_to_string(&mut body)` fills `body` with
                // whatever the tainted reader produces.
                if name.starts_with("read") && rm != 0 {
                    for a in args {
                        if let Expr::MutBorrow(inner) = a {
                            if let Expr::Path { segs, .. } = inner.as_ref() {
                                if let [single] = segs.as_slice() {
                                    self.or_into(&single.clone(), rm);
                                }
                            }
                        }
                    }
                }
                if GROWS_RECV.contains(&name.as_str()) && joined != 0 {
                    if let Expr::Path { segs, .. } = recv.as_ref() {
                        if let [single] = segs.as_slice() {
                            self.or_into(&single.clone(), joined);
                        }
                    }
                }
                match name.as_str() {
                    // The result is bounded above by the argument: a
                    // clean limit sanitizes the receiver.
                    "min" => argm.first().copied().unwrap_or(0),
                    "clamp" => argm.get(1).copied().unwrap_or(0),
                    _ => match self.model.call(name, *line, rm, &argm) {
                        Some(m) => m | rm,
                        None => rm | joined,
                    },
                }
            }
            Expr::Index { base, index, line } => {
                let bm = self.eval(base);
                let im = self.eval(index);
                self.hit("slice index", im, *line);
                bm | im
            }
            Expr::Binary { op, lhs, rhs, line } => {
                let lm = self.eval(lhs);
                let rm = self.eval(rhs);
                if matches!(op, BinOp::Mul) && lm & self.live != 0 && rm & self.live != 0 {
                    self.sinks.push(SinkHit {
                        what: "cell-count multiplication",
                        line: *line,
                    });
                }
                lm | rm
            }
            Expr::Assign { op, lhs, rhs, .. } => {
                let rm = self.eval(rhs);
                if let Expr::Path { segs, .. } = lhs.as_ref() {
                    if let [single] = segs.as_slice() {
                        let name = single.clone();
                        if op.is_some() {
                            self.or_into(&name, rm);
                        } else {
                            self.set(&name, rm);
                        }
                    }
                }
                0
            }
            Expr::Cast { expr, .. } => self.eval(expr),
            Expr::Unary(i) | Expr::MutBorrow(i) => self.eval(i),
            Expr::Try(i) => {
                let m = self.eval(i);
                // `x.validate()?` — a range-validating parse is a
                // sanitizer: execution only continues if `x` passed.
                if let Expr::MethodCall { recv, name, .. } = i.as_ref() {
                    if name.starts_with("validate") {
                        if let Some(t) = sanitize_target(recv) {
                            self.set(&t, 0);
                        }
                    }
                }
                m
            }
            Expr::Macro { name, args, line } => {
                let argm: Vec<u64> = args.iter().map(|a| self.eval(a)).collect();
                // `vec![elem; n]` — the parser splits the repeat form
                // into exactly two argument slots.
                if name == "vec" && argm.len() == 2 {
                    self.hit("buffer length (`vec![_; n]`)", argm[1], *line);
                }
                argm.iter().fold(0, |a, &b| a | b)
            }
            Expr::StructLit { fields, rest, .. } => {
                let mut m = 0;
                for (_, v) in fields {
                    m |= self.eval(v);
                }
                if let Some(r) = rest {
                    m |= self.eval(r);
                }
                m
            }
            Expr::ArrayLit { elems, .. } | Expr::Tuple { elems, .. } => {
                elems.iter().map(|e| self.eval(e)).fold(0, |a, b| a | b)
            }
            Expr::Block(b) => self.visit_block(b),
            Expr::Closure { body, .. } => self.eval(body),
            Expr::If {
                bindings,
                cond,
                then,
                else_,
            } => self.visit_if(bindings, cond, then, else_.as_deref()),
            Expr::Match { scrutinee, arms } => {
                let sm = self.eval(scrutinee);
                let mut m = 0;
                for arm in arms {
                    let mark = self.env.len();
                    for b in &arm.bindings {
                        self.env.push((b.name.clone(), sm));
                    }
                    if let Some(g) = &arm.guard {
                        self.eval(g);
                    }
                    m |= self.eval(&arm.body);
                    self.env.truncate(mark);
                }
                m
            }
            Expr::While { cond, body, .. } => {
                if let Some(c) = cond {
                    self.eval(c);
                }
                // Two passes reach a fixpoint for masks a loop iteration
                // feeds back into itself (masks only grow).
                self.visit_block(body);
                self.visit_block(body);
                0
            }
            Expr::For {
                bindings,
                iter,
                body,
            } => {
                let im = self.eval(iter);
                if let Expr::Range { hi: Some(h), .. } = iter.as_ref() {
                    self.hit("loop bound", self.peek(h), h.line());
                }
                let mark = self.env.len();
                for b in bindings {
                    self.env.push((b.name.clone(), im));
                }
                self.visit_block(body);
                self.visit_block(body);
                self.env.truncate(mark);
                0
            }
            Expr::Return(v) => {
                if let Some(v) = v {
                    let m = self.eval(v);
                    self.ret |= m;
                }
                0
            }
            Expr::Range { lo, hi } => {
                let mut m = 0;
                for e in [lo, hi].into_iter().flatten() {
                    m |= self.eval(e);
                }
                m
            }
        }
    }

    fn visit_if(
        &mut self,
        bindings: &[crate::ast::Binding],
        cond: &Expr,
        then: &Block,
        else_: Option<&Expr>,
    ) -> u64 {
        let cm = self.eval(cond);
        let san_then = self.sanitized_by(cond, true);
        let mut san_else = self.sanitized_by(cond, false);
        // `if let Err(_) = x.validate(..) { ..return.. }` — falling
        // through means validation passed.
        if let Expr::MethodCall { recv, name, .. } = cond {
            if name.starts_with("validate") {
                if let Some(t) = sanitize_target(recv) {
                    san_else.push(t);
                }
            }
        }
        let base = self.env.clone();
        for t in &san_then {
            self.set(t, 0);
        }
        let mark = self.env.len();
        for b in bindings {
            self.env.push((b.name.clone(), cm));
        }
        let tm = {
            let m = self.visit_block(then);
            self.env.truncate(mark);
            m
        };
        let then_env = std::mem::replace(&mut self.env, base);
        for t in &san_else {
            self.set(t, 0);
        }
        let em = match else_ {
            Some(e) => self.eval(e),
            None => 0,
        };
        // A branch that cannot fall through contributes no state: the
        // early-return guard `if t > LIMIT { return err }` leaves `t`
        // sanitized on the only surviving path.
        if block_terminates(then) {
            return em;
        }
        if matches!(else_, Some(Expr::Block(b)) if block_terminates(b)) {
            self.env = then_env;
            return tm;
        }
        for (slot, (name, m)) in self.env.iter_mut().zip(&then_env) {
            if slot.0 == *name {
                slot.1 |= m;
            }
        }
        tm | em
    }

    /// Locals a comparison guard upper-bounds when `cond` is `taken`,
    /// provided the limit side does not itself look tainted.
    fn sanitized_by(&self, cond: &Expr, taken: bool) -> Vec<String> {
        let Expr::Binary { op, lhs, rhs, .. } = cond else {
            return Vec::new();
        };
        let (bounded, limit) = match (op, taken) {
            (BinOp::Lt | BinOp::Le, true) | (BinOp::Gt | BinOp::Ge, false) => (lhs, rhs),
            (BinOp::Gt | BinOp::Ge, true) | (BinOp::Lt | BinOp::Le, false) => (rhs, lhs),
            _ => return Vec::new(),
        };
        if self.peek(limit) & self.live != 0 {
            return Vec::new();
        }
        sanitize_target(bounded).into_iter().collect()
    }

    /// Pure (no side effects) approximation of an expression's mask,
    /// for guard-limit checks. Unknown shapes read as clean.
    fn peek(&self, e: &Expr) -> u64 {
        match e {
            Expr::Path { segs, .. } => match segs.as_slice() {
                [single] => self.lookup(single),
                _ => 0,
            },
            Expr::Field { base, .. } => self.peek(base),
            Expr::MethodCall { recv, .. } => self.peek(recv),
            Expr::Index { base, index, .. } => self.peek(base) | self.peek(index),
            Expr::Unary(i) | Expr::MutBorrow(i) | Expr::Try(i) => self.peek(i),
            Expr::Cast { expr, .. } => self.peek(expr),
            Expr::Binary { lhs, rhs, .. } => self.peek(lhs) | self.peek(rhs),
            _ => 0,
        }
    }
}

/// The local a size guard bounds: `t`, `t.len()`, `(&t).len()`.
fn sanitize_target(e: &Expr) -> Option<String> {
    match e {
        Expr::Path { segs, .. } => match segs.as_slice() {
            [single] => Some(single.clone()),
            _ => None,
        },
        Expr::MethodCall { recv, name, .. } if name == "len" => sanitize_target(recv),
        Expr::Unary(i) | Expr::MutBorrow(i) | Expr::Try(i) => sanitize_target(i),
        _ => None,
    }
}

/// True when a block's last statement unconditionally leaves the
/// function.
fn block_terminates(b: &Block) -> bool {
    matches!(b.last(), Some(Stmt::Expr(Expr::Return(_))))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse_file;

    fn sinks(src: &str) -> Vec<SinkHit> {
        let parsed = parse_file(&lex(src));
        let f = &parsed.fns[0];
        let masks: Vec<u64> = (0..f.params.len()).map(param_bit).collect();
        let live = masks.iter().fold(0, |a, &b| a | b);
        run(f, &masks, live, &mut OpaqueCalls).sinks
    }

    #[test]
    fn tainted_capacity_fires_and_min_sanitizes() {
        let hits = sinks("fn t(n: usize) { let v: Vec<u8> = Vec::with_capacity(n); }");
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert!(hits[0].what.contains("with_capacity"));
        assert!(sinks(
            "fn t(n: usize) { let k = n.min(64); let v: Vec<u8> = Vec::with_capacity(k); }"
        )
        .is_empty());
    }

    #[test]
    fn early_return_guard_sanitizes_the_fallthrough() {
        let src = "fn t(n: usize) -> Result<(), E> {\n\
                   if n > MAX { return Err(e()); }\n\
                   let v: Vec<u8> = Vec::with_capacity(n); Ok(())\n}";
        assert!(sinks(src).is_empty());
        let unguarded = "fn t(n: usize) -> Result<(), E> {\n\
                   if n == MAX { return Err(e()); }\n\
                   let v: Vec<u8> = Vec::with_capacity(n); Ok(())\n}";
        assert_eq!(sinks(unguarded).len(), 1);
    }

    #[test]
    fn len_guard_sanitizes_the_collection() {
        let src = "fn t(items: Vec<u64>) -> Result<(), E> {\n\
                   if items.len() > MAX { return Err(e()); }\n\
                   let v: Vec<u8> = Vec::with_capacity(items.len()); Ok(())\n}";
        assert!(sinks(src).is_empty());
    }

    #[test]
    fn index_loop_bound_and_product_sinks() {
        assert_eq!(
            sinks("fn t(i: usize, xs: &[u8]) { let b = xs[i]; }").len(),
            1
        );
        assert_eq!(
            sinks("fn t(n: u64) { for k in 0..n { work(k); } }").len(),
            1
        );
        assert_eq!(
            sinks("fn t(a: u64, b: u64) { let cells = a * b; }").len(),
            1
        );
        // One tainted side only: not a cell-count product.
        assert!(sinks("fn t(a: u64) { let cells = a * GRID; }").is_empty());
    }

    #[test]
    fn read_into_mut_borrow_taints_the_buffer() {
        let src = "fn t(stream: UnixStream) {\n\
                   let mut body = String::new();\n\
                   stream.read_to_string(&mut body);\n\
                   let v: Vec<u8> = Vec::with_capacity(body.len());\n}";
        assert_eq!(sinks(src).len(), 1);
    }

    #[test]
    fn validate_question_mark_sanitizes_receiver() {
        let src = "fn t(s: Sampling) -> Result<(), E> {\n\
                   s.validate()?;\n\
                   let v: Vec<u8> = Vec::with_capacity(s.windows); Ok(())\n}";
        assert!(sinks(src).is_empty());
    }

    #[test]
    fn ret_taint_tracks_param_flow() {
        let parsed = parse_file(&lex(
            "fn pick(a: u64, b: u64, c: u64) -> u64 { if cond { a } else { c } }",
        ));
        let m = ret_taint_of(&parsed.fns[0], &mut OpaqueCalls);
        assert_eq!(m, param_bit(0) | param_bit(2));
    }

    #[test]
    fn pushed_elements_taint_the_collection() {
        let src = "fn t(n: u64) -> Vec<u64> { let mut out = Vec::new(); out.push(n); out }";
        let parsed = parse_file(&lex(src));
        let m = ret_taint_of(&parsed.fns[0], &mut OpaqueCalls);
        assert_eq!(m, param_bit(0));
    }
}
