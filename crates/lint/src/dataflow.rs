//! Intraprocedural integer range analysis powering L010.
//!
//! A non-relational interval domain (`[lo, hi]` over `i128`) abstract-
//! interprets each function body: `let` bindings and assignments update
//! the environment, dominating comparisons refine it, and every
//! `+`/`-`/`*` whose operands carry a cycle/count unit name is checked
//! against `u64` bounds. The lattice makes two deliberate imprecision
//! trade-offs, both documented in `docs/LINTS.md`:
//!
//! - **Operand headroom.** An unknown `u64` rvalue is modelled as
//!   `[0, 2^62]`, not `[0, 2^64-1]`: two bits of headroom mean a single
//!   add of two unknowns (`tx_start + tx_cycles`) does not fire, while a
//!   chain of four unknown adds — or any unknown multiply — still does.
//!   Simulator horizon arithmetic lives comfortably inside 2^62 cycles
//!   (146 years at 1 GHz); values that approach it got there by wrapping.
//! - **Accumulator widening.** The target of a compound assignment
//!   through a field, index or deref (`self.stat += x`) is modelled as
//!   the full `[0, 2^64-1]`: the analysis cannot bound how many times a
//!   persistent accumulator has already been bumped, so cross-call
//!   accumulation must saturate to be provably wrap-free.
//!
//! Subtractions additionally consult an order-fact set harvested from
//! dominating guards: inside `if i >= cap { .. }` the fact `i >= cap`
//! proves `i - cap`. `saturating_*`/`checked_*`/`wrapping_*` calls and
//! `as` casts on either operand silence the check (the cast is the
//! explicit conversion L008 already demands).

use crate::ast::{BinOp, Block, Expr, LetStmt, PFn, Stmt};
use crate::facts::unit_of;

/// An inclusive integer interval. The analysis saturates at the `i128`
/// rails, which both sit far outside the `u64` range being proven.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interval {
    pub lo: i128,
    pub hi: i128,
}

const U64_MAX: i128 = u64::MAX as i128;

/// Unknown one-shot operand: `[0, 2^62]` (headroom trade-off above).
const OPERAND_TOP: Interval = Interval { lo: 0, hi: 1 << 62 };

/// Unknown persistent accumulator: the full `u64` range.
const ACCUM_TOP: Interval = Interval { lo: 0, hi: U64_MAX };

/// Collection lengths are bounded by the address space.
const LEN_TOP: Interval = Interval { lo: 0, hi: 1 << 48 };

impl Interval {
    pub fn exact(v: i128) -> Interval {
        Interval { lo: v, hi: v }
    }

    fn add(self, o: Interval) -> Interval {
        Interval {
            lo: self.lo.saturating_add(o.lo),
            hi: self.hi.saturating_add(o.hi),
        }
    }

    fn sub(self, o: Interval) -> Interval {
        Interval {
            lo: self.lo.saturating_sub(o.hi),
            hi: self.hi.saturating_sub(o.lo),
        }
    }

    fn mul(self, o: Interval) -> Interval {
        let products = [
            self.lo.saturating_mul(o.lo),
            self.lo.saturating_mul(o.hi),
            self.hi.saturating_mul(o.lo),
            self.hi.saturating_mul(o.hi),
        ];
        Interval {
            lo: products.iter().copied().min().unwrap_or(0),
            hi: products.iter().copied().max().unwrap_or(0),
        }
    }

    fn clamp_u64(self) -> Interval {
        Interval {
            lo: self.lo.clamp(0, U64_MAX),
            hi: self.hi.clamp(0, U64_MAX),
        }
    }

    pub fn join(self, o: Interval) -> Interval {
        Interval {
            lo: self.lo.min(o.lo),
            hi: self.hi.max(o.hi),
        }
    }

    pub fn contains(self, v: i128) -> bool {
        self.lo <= v && v <= self.hi
    }
}

/// Analyze one function; returns `(description, line)` for every
/// arithmetic op on a unit-named operand that could wrap a `u64`.
/// Summary-free form: every call evaluates to `OPERAND_TOP`.
pub fn arith_risks(f: &PFn) -> Vec<(String, u32)> {
    arith_risks_with(f, &|_, _| None).risks
}

/// A callee-summary oracle: maps a call site's `(callee name, line)` to
/// the joined return interval of its resolved targets, or `None` for "no
/// summary" (the call evaluates to `OPERAND_TOP`, the summary-free model).
pub type Oracle<'a> = &'a dyn Fn(&str, u32) -> Option<Interval>;

/// Per-function result of the range analysis: the L010 risks plus the
/// function's own return interval, which feeds the interprocedural
/// summary fixpoint. `ret` is `None` when the function does not return a
/// bare integer type or no return path could be bounded.
pub struct FnFlow {
    pub risks: Vec<(String, u32)>,
    pub ret: Option<Interval>,
}

/// Like [`arith_risks`], but call results are refined through `oracle`
/// and the function's own return interval is collected.
pub fn arith_risks_with(f: &PFn, oracle: Oracle<'_>) -> FnFlow {
    let mut flow = Flow::new(oracle);
    // Walk the top-level statements without the usual block scope pop so
    // the environment is still live when the tail expression is evaluated
    // for the return summary.
    for s in &f.body {
        flow.visit_stmt(s);
    }
    let collect_ret = is_bare_int(&f.ret);
    if collect_ret {
        if let Some(Stmt::Expr(tail)) = f.body.last() {
            if !matches!(tail, Expr::Return(_)) {
                let iv = flow.eval(tail);
                flow.note_ret(iv);
            }
        }
    }
    FnFlow {
        risks: flow.risks,
        ret: if collect_ret { flow.ret } else { None },
    }
}

/// Return summaries are only collected for functions returning a bare
/// integer: wrapped returns (`Option<u64>`, structs) evaluate to top at
/// the caller anyway once unwrapped.
fn is_bare_int(ty: &str) -> bool {
    matches!(
        ty,
        "u8" | "u16"
            | "u32"
            | "u64"
            | "u128"
            | "usize"
            | "i8"
            | "i16"
            | "i32"
            | "i64"
            | "i128"
            | "isize"
    )
}

struct Flow<'a> {
    /// Lexically scoped `name -> interval` for `let`-bound locals.
    env: Vec<(String, Interval)>,
    /// Order facts `lhs >= rhs` (textual keys) from dominating guards.
    facts: Vec<(String, String)>,
    risks: Vec<(String, u32)>,
    /// Callee return summaries (interprocedural mode).
    oracle: Oracle<'a>,
    /// Join of every `return`/tail value seen so far. Joining values from
    /// nested closures is a deliberate (sound, widening-only) imprecision.
    ret: Option<Interval>,
}

impl<'a> Flow<'a> {
    fn new(oracle: Oracle<'a>) -> Flow<'a> {
        Flow {
            env: Vec::new(),
            facts: Vec::new(),
            risks: Vec::new(),
            oracle,
            ret: None,
        }
    }

    fn note_ret(&mut self, iv: Interval) {
        self.ret = Some(match self.ret {
            Some(prev) => prev.join(iv),
            None => iv,
        });
    }
    fn lookup(&self, name: &str) -> Option<Interval> {
        self.env
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .map(|&(_, iv)| iv)
    }

    fn set(&mut self, name: &str, iv: Interval) {
        if let Some(slot) = self.env.iter_mut().rev().find(|(n, _)| n == name) {
            slot.1 = iv;
        } else {
            self.env.push((name.to_string(), iv));
        }
        // The old value's order facts no longer hold.
        self.facts
            .retain(|(a, b)| !key_mentions(a, name) && !key_mentions(b, name));
    }

    fn has_fact(&self, ge: &str, than: &str) -> bool {
        self.facts.iter().any(|(a, b)| a == ge && b == than)
    }

    fn visit_block(&mut self, b: &Block) {
        let mark = self.env.len();
        for s in b {
            self.visit_stmt(s);
        }
        self.env.truncate(mark);
    }

    fn visit_stmt(&mut self, s: &Stmt) {
        match s {
            Stmt::Let(l) => self.visit_let(l),
            Stmt::Expr(e) => self.visit_expr(e),
        }
    }

    fn visit_let(&mut self, l: &LetStmt) {
        let iv = match &l.init {
            Some(init) => {
                self.visit_expr(init);
                self.eval(init)
            }
            None => OPERAND_TOP,
        };
        if let Some(else_b) = &l.else_block {
            self.visit_block(else_b);
        }
        for b in &l.bindings {
            let bound = if b.whole && b.peel == 0 {
                iv
            } else {
                OPERAND_TOP
            };
            self.env.push((b.name.clone(), bound));
        }
    }

    /// Walk an expression, checking arithmetic and tracking assignments.
    fn visit_expr(&mut self, e: &Expr) {
        match e {
            Expr::Binary { op, lhs, rhs, line } => {
                self.visit_expr(lhs);
                self.visit_expr(rhs);
                if matches!(op, BinOp::Add | BinOp::Sub | BinOp::Mul) {
                    let lv = self.eval(lhs);
                    self.check(*op, lhs, lv, rhs, *line);
                }
            }
            Expr::Assign { op, lhs, rhs, line } => {
                self.visit_expr(rhs);
                if let Some(op @ (BinOp::Add | BinOp::Sub | BinOp::Mul)) = op {
                    // A compound assignment through a field/index/deref
                    // is a persistent accumulator: widen to ACCUM_TOP.
                    let lv = if is_place_projection(lhs) {
                        ACCUM_TOP
                    } else {
                        self.eval(lhs)
                    };
                    self.check(*op, lhs, lv, rhs, *line);
                }
                if let Some(name) = local_name(lhs) {
                    let rv = self.eval(rhs);
                    let new = match op {
                        None => rv,
                        Some(BinOp::Add) => self.eval(lhs).add(rv),
                        Some(BinOp::Sub) => self.eval(lhs).sub(rv),
                        Some(BinOp::Mul) => self.eval(lhs).mul(rv),
                        Some(_) => OPERAND_TOP,
                    };
                    self.set(&name, new);
                } else if let Some(k) = expr_key(lhs) {
                    // Writing through a projection invalidates its facts.
                    self.facts.retain(|(a, b)| a != &k && b != &k);
                }
            }
            Expr::If {
                cond, then, else_, ..
            } => {
                self.visit_expr(cond);
                let base = self.env.clone();
                let fact_mark = self.facts.len();
                let refined = self.refine_from(cond, true);
                self.visit_block(then);
                self.facts.truncate(fact_mark);
                self.unrefine(refined);
                // Run the else branch from the pre-then environment, then
                // join: after the `if`, a local holds the hull of what the
                // two paths assigned.
                let then_env = std::mem::replace(&mut self.env, base);
                if let Some(els) = else_ {
                    let refined = self.refine_from(cond, false);
                    self.visit_expr(els);
                    self.facts.truncate(fact_mark);
                    self.unrefine(refined);
                }
                for (slot, (name, iv)) in self.env.iter_mut().zip(&then_env) {
                    if slot.0 == *name {
                        slot.1 = slot.1.join(*iv);
                    }
                }
            }
            Expr::While { cond, body, .. } => {
                let fact_mark = self.facts.len();
                let refined = match cond {
                    Some(c) => {
                        self.visit_expr(c);
                        self.refine_from(c, true)
                    }
                    None => Vec::new(),
                };
                self.widen_assigned(body);
                self.visit_block(body);
                self.facts.truncate(fact_mark);
                self.unrefine(refined);
            }
            Expr::For { iter, body, .. } => {
                self.visit_expr(iter);
                self.widen_assigned(body);
                self.visit_block(body);
            }
            Expr::Match { scrutinee, arms } => {
                self.visit_expr(scrutinee);
                for arm in arms {
                    let fact_mark = self.facts.len();
                    if let Some(g) = &arm.guard {
                        self.visit_expr(g);
                    }
                    self.visit_expr(&arm.body);
                    self.facts.truncate(fact_mark);
                }
            }
            Expr::Block(b) => self.visit_block(b),
            Expr::Closure { body, .. } => self.visit_expr(body),
            Expr::Call { args, .. } => {
                for a in args {
                    self.visit_expr(a);
                }
            }
            Expr::MethodCall { recv, args, .. } => {
                self.visit_expr(recv);
                for a in args {
                    self.visit_expr(a);
                }
            }
            Expr::Field { base, .. } => self.visit_expr(base),
            Expr::Index { base, index, .. } => {
                self.visit_expr(base);
                self.visit_expr(index);
            }
            Expr::Unary(i) | Expr::MutBorrow(i) | Expr::Try(i) => self.visit_expr(i),
            Expr::Cast { expr, .. } => self.visit_expr(expr),
            Expr::StructLit { fields, rest, .. } => {
                for (_, v) in fields {
                    self.visit_expr(v);
                }
                if let Some(r) = rest {
                    self.visit_expr(r);
                }
            }
            Expr::ArrayLit { elems, .. } | Expr::Tuple { elems, .. } => {
                for e in elems {
                    self.visit_expr(e);
                }
            }
            Expr::Return(v) => {
                if let Some(v) = v {
                    self.visit_expr(v);
                    let iv = self.eval(v);
                    self.note_ret(iv);
                }
            }
            Expr::Range { lo, hi } => {
                for e in [lo, hi].into_iter().flatten() {
                    self.visit_expr(e);
                }
            }
            // Macro args compile away (debug_assert!) or format; their
            // arithmetic is not release-path cycle math.
            Expr::Macro { .. } => {}
            Expr::Lit(_)
            | Expr::Num { .. }
            | Expr::SelfVal(_)
            | Expr::Path { .. }
            | Expr::Opaque(_) => {}
        }
    }

    /// Check one `+`/`-`/`*` whose lhs interval is pre-computed (the
    /// compound-assign path widens it).
    fn check(&mut self, op: BinOp, lhs: &Expr, lv: Interval, rhs: &Expr, line: u32) {
        // A cast on either side is the explicit conversion escape hatch.
        if is_cast(lhs) || is_cast(rhs) {
            return;
        }
        let l_unit = arith_name(lhs).and_then(|n| unit_of(&n).map(|_| n));
        let r_unit = arith_name(rhs).and_then(|n| unit_of(&n).map(|_| n));
        if l_unit.is_none() && r_unit.is_none() {
            return;
        }
        let rv = self.eval(rhs);
        let safe = match op {
            BinOp::Add => lv.hi.saturating_add(rv.hi) <= U64_MAX,
            BinOp::Mul => lv.hi.saturating_mul(rv.hi) <= U64_MAX,
            BinOp::Sub => {
                lv.lo.saturating_sub(rv.hi) >= 0
                    || match (expr_key(lhs), expr_key(rhs)) {
                        (Some(a), Some(b)) => self.has_fact(&a, &b),
                        _ => false,
                    }
            }
            _ => true,
        };
        if !safe {
            let sym = match op {
                BinOp::Add => "+",
                BinOp::Sub => "-",
                _ => "*",
            };
            let name = l_unit.or(r_unit).unwrap_or_default();
            self.risks.push((format!("`{name}` (`{sym}`)"), line));
        }
    }

    /// Evaluate an expression to an interval (no side effects).
    fn eval(&self, e: &Expr) -> Interval {
        match e {
            Expr::Num { val, .. } => Interval::exact(*val),
            Expr::Path { segs, .. } => match segs.as_slice() {
                [single] => self.lookup(single).unwrap_or(OPERAND_TOP),
                _ => OPERAND_TOP,
            },
            Expr::Binary { op, lhs, rhs, .. } => {
                let l = self.eval(lhs);
                let r = self.eval(rhs);
                match op {
                    BinOp::Add => l.add(r),
                    BinOp::Sub => l.sub(r),
                    BinOp::Mul => l.mul(r),
                    BinOp::Div if l.lo >= 0 && r.lo >= 1 => Interval {
                        lo: l.lo / r.hi.max(1),
                        hi: l.hi / r.lo,
                    },
                    BinOp::Rem if l.lo >= 0 && r.lo >= 1 => Interval {
                        lo: 0,
                        hi: r.hi.saturating_sub(1),
                    },
                    BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge | BinOp::Cmp => {
                        Interval { lo: 0, hi: 1 }
                    }
                    _ => OPERAND_TOP,
                }
            }
            Expr::MethodCall {
                recv,
                name,
                args,
                line,
            } => {
                let r = self.eval(recv);
                let a0 = args.first().map(|a| self.eval(a));
                match (name.as_str(), a0) {
                    ("saturating_add", Some(a)) => r.add(a).clamp_u64(),
                    ("saturating_sub", Some(a)) => r.sub(a).clamp_u64(),
                    ("saturating_mul", Some(a)) => r.mul(a).clamp_u64(),
                    ("min", Some(a)) => Interval {
                        lo: r.lo.min(a.lo),
                        hi: r.hi.min(a.hi),
                    },
                    ("max", Some(a)) => Interval {
                        lo: r.lo.max(a.lo),
                        hi: r.hi.max(a.hi),
                    },
                    ("len", _) => LEN_TOP,
                    _ => (self.oracle)(name, *line).unwrap_or(OPERAND_TOP),
                }
            }
            Expr::Call { callee, line, .. } => match callee.as_ref() {
                Expr::Path { segs, .. } => segs
                    .last()
                    .and_then(|n| (self.oracle)(n, *line))
                    .unwrap_or(OPERAND_TOP),
                _ => OPERAND_TOP,
            },
            Expr::Cast { expr, .. } => self.eval(expr).clamp_u64(),
            Expr::Unary(i) | Expr::MutBorrow(i) | Expr::Try(i) => self.eval(i),
            Expr::Block(b) => match b.last() {
                Some(Stmt::Expr(last)) => self.eval(last),
                _ => OPERAND_TOP,
            },
            _ => OPERAND_TOP,
        }
    }

    /// Harvest refinements from a guard for the branch where it is
    /// `taken` (then) or not (else). Returns env entries to restore.
    fn refine_from(&mut self, cond: &Expr, taken: bool) -> Vec<(String, Interval)> {
        let mut restored = Vec::new();
        if let Expr::Binary { op, lhs, rhs, .. } = cond {
            // Normalize to a `ge >= than` order fact.
            let pair = match (op, taken) {
                (BinOp::Gt | BinOp::Ge, true) | (BinOp::Lt | BinOp::Le, false) => Some((lhs, rhs)),
                (BinOp::Lt | BinOp::Le, true) | (BinOp::Gt | BinOp::Ge, false) => Some((rhs, lhs)),
                _ => None,
            };
            if let Some((ge, than)) = pair {
                if let (Some(a), Some(b)) = (expr_key(ge), expr_key(than)) {
                    self.facts.push((a, b));
                }
                // Numeric refinement for `x > 3`-style guards.
                if let (Some(name), Expr::Num { val, .. }) = (local_name(ge), than.as_ref()) {
                    let strict = matches!(op, BinOp::Gt | BinOp::Lt) == taken;
                    if let Some(old) = self.lookup(&name) {
                        restored.push((name.clone(), old));
                        let lo = old.lo.max(val.saturating_add(i128::from(strict)));
                        self.set(
                            &name,
                            Interval {
                                lo,
                                hi: old.hi.max(lo),
                            },
                        );
                    }
                }
            }
        }
        restored
    }

    fn unrefine(&mut self, restored: Vec<(String, Interval)>) {
        for (name, iv) in restored {
            self.set(&name, iv);
        }
    }

    /// Before a loop body, forget everything the body assigns.
    fn widen_assigned(&mut self, body: &Block) {
        let mut names = Vec::new();
        collect_assigned(body, &mut names);
        for n in names {
            self.set(&n, OPERAND_TOP);
        }
    }
}

fn is_cast(e: &Expr) -> bool {
    match e {
        Expr::Cast { .. } => true,
        Expr::Unary(i) | Expr::MutBorrow(i) | Expr::Try(i) => is_cast(i),
        _ => false,
    }
}

/// The place a compound assignment persists into, if it is a
/// field/index/deref projection rather than a plain local.
fn is_place_projection(e: &Expr) -> bool {
    matches!(
        e,
        Expr::Field { .. } | Expr::Index { .. } | Expr::Unary(_) | Expr::MutBorrow(_)
    )
}

fn local_name(e: &Expr) -> Option<String> {
    match e {
        Expr::Path { segs, .. } => match segs.as_slice() {
            [single] => Some(single.clone()),
            _ => None,
        },
        _ => None,
    }
}

/// The unit-carrying name of an arithmetic operand.
fn arith_name(e: &Expr) -> Option<String> {
    match e {
        Expr::Path { segs, .. } => segs.last().cloned(),
        Expr::Field { name, .. } => Some(name.clone()),
        Expr::MethodCall { name, .. } => Some(name.clone()),
        Expr::Call { callee, .. } => match callee.as_ref() {
            Expr::Path { segs, .. } => segs.last().cloned(),
            _ => None,
        },
        Expr::Unary(i) | Expr::MutBorrow(i) | Expr::Try(i) => arith_name(i),
        _ => None,
    }
}

/// A textual identity for order facts: stable for locals, `self` fields
/// and pure-looking method results within one function body.
fn expr_key(e: &Expr) -> Option<String> {
    match e {
        Expr::SelfVal(_) => Some("self".to_string()),
        Expr::Path { segs, .. } => Some(segs.join("::")),
        Expr::Field { base, name, .. } => Some(format!("{}.{}", expr_key(base)?, name)),
        Expr::MethodCall {
            recv, name, args, ..
        } if args.is_empty() => Some(format!("{}.{}()", expr_key(recv)?, name)),
        Expr::Num { val, .. } => Some(val.to_string()),
        Expr::Unary(i) | Expr::MutBorrow(i) | Expr::Try(i) => expr_key(i),
        _ => None,
    }
}

fn key_mentions(key: &str, name: &str) -> bool {
    key.split(['.', ':'])
        .any(|part| part == name || part.strip_suffix("()").map(|p| p == name).unwrap_or(false))
}

fn collect_assigned(b: &Block, out: &mut Vec<String>) {
    for s in b {
        match s {
            Stmt::Let(l) => {
                if let Some(init) = &l.init {
                    collect_assigned_expr(init, out);
                }
            }
            Stmt::Expr(e) => collect_assigned_expr(e, out),
        }
    }
}

fn collect_assigned_expr(e: &Expr, out: &mut Vec<String>) {
    match e {
        Expr::Assign { lhs, rhs, .. } => {
            if let Some(n) = local_name(lhs) {
                out.push(n);
            }
            collect_assigned_expr(rhs, out);
        }
        Expr::Block(b) => collect_assigned(b, out),
        Expr::If { then, else_, .. } => {
            collect_assigned(then, out);
            if let Some(e) = else_ {
                collect_assigned_expr(e, out);
            }
        }
        Expr::While { body, .. } | Expr::For { body, .. } => collect_assigned(body, out),
        Expr::Match { arms, .. } => {
            for a in arms {
                collect_assigned_expr(&a.body, out);
            }
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse_file;

    fn risks(body: &str) -> Vec<(String, u32)> {
        let src = format!("fn t(&mut self) {{ {body} }}");
        let parsed = parse_file(&lex(&src));
        arith_risks(&parsed.fns[0])
    }

    #[test]
    fn single_unknown_add_has_headroom() {
        assert!(risks("let end_cycle = start + busy_cycles;").is_empty());
    }

    #[test]
    fn field_accumulator_add_fires() {
        let r = risks("self.busy_cycles += tx_cycles;");
        assert_eq!(r.len(), 1, "{r:?}");
    }

    #[test]
    fn saturating_accumulator_is_silent() {
        assert!(risks("self.busy_cycles = self.busy_cycles.saturating_add(tx_cycles);").is_empty());
    }

    #[test]
    fn unproven_sub_fires_and_guard_proves_it() {
        assert_eq!(risks("let d = ready_cycle - now;").len(), 1);
        assert!(risks("if ready_cycle >= now { let d = ready_cycle - now; }").is_empty());
        assert!(risks("if now < ready_cycle { let d = ready_cycle - now; }").is_empty());
        // The else branch of `<` inverts to `>=`.
        assert!(risks("if ready_cycle < now { } else { let d = ready_cycle - now; }").is_empty());
    }

    #[test]
    fn guard_does_not_leak_out_of_its_branch() {
        assert_eq!(
            risks("if ready_cycle >= now { } let d = ready_cycle - now;").len(),
            1
        );
    }

    #[test]
    fn unknown_mul_fires_and_cast_silences() {
        assert_eq!(risks("let area = page_count * span;").len(), 1);
        assert!(risks("let area = page_count as u128 * span;").is_empty());
    }

    #[test]
    fn literal_ranges_are_tracked_through_locals() {
        assert!(risks("let base_cycles = 4; let c = base_cycles * 8;").is_empty());
        assert!(risks("let n_count = 3; let m = n_count + 1; let k = m - 1;").is_empty());
    }

    #[test]
    fn assignment_invalidates_an_order_fact() {
        let r = risks("if end_cycle >= base { end_cycle = fresh; let d = end_cycle - base; }");
        assert_eq!(r.len(), 1, "{r:?}");
    }

    /// Soundness: on randomly generated straight-line `let` chains, the
    /// computed interval always contains the concrete evaluation. The
    /// generator is a hand-rolled LCG (the lint crate takes no deps).
    #[test]
    fn random_straight_line_snippets_are_soundly_bounded() {
        let mut state: u64 = 0x9E37_79B9_7F4A_7C15;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as i128
        };
        for trial in 0..200 {
            let mut src = String::from("fn t() { let v0 = ");
            let mut concrete: Vec<i128> = Vec::new();
            let seed = next() % 1000;
            src.push_str(&format!("{seed}; "));
            concrete.push(seed);
            let vars = 2 + (next() % 6) as usize;
            for i in 1..=vars {
                let a = (next() as usize) % i;
                let op = next() % 3;
                let lit = 1 + next() % 50;
                let (expr, val) = match op {
                    0 => (format!("v{a} + {lit}"), concrete[a].saturating_add(lit)),
                    1 => (
                        format!("v{a}.saturating_sub({lit})"),
                        concrete[a].saturating_sub(lit).clamp(0, U64_MAX),
                    ),
                    _ => (format!("v{a} * {lit}"), concrete[a].saturating_mul(lit)),
                };
                src.push_str(&format!("let v{i} = {expr}; "));
                concrete.push(val);
            }
            // Bind a probe so the final env can be checked through eval.
            src.push('}');
            let parsed = parse_file(&lex(&src));
            let mut flow = Flow::new(&|_, _| None);
            for (i, s) in parsed.fns[0].body.iter().enumerate() {
                flow.visit_stmt(s);
                let Stmt::Let(l) = s else { continue };
                let name = &l.bindings[0].name;
                let iv = flow.lookup(name).expect("bound var");
                assert!(
                    iv.contains(concrete[i]),
                    "trial {trial}: {src}\n  {name} = {} not in [{}, {}]",
                    concrete[i],
                    iv.lo,
                    iv.hi
                );
            }
        }
    }

    #[test]
    fn callee_summary_bounds_a_call_and_ret_is_collected() {
        let src = "fn t() -> u64 { let base_cycles = leaf_cycles(); base_cycles * 8 }";
        let parsed = parse_file(&lex(src));
        let bare = arith_risks_with(&parsed.fns[0], &|_, _| None);
        assert_eq!(bare.risks.len(), 1, "summary-free call widens to top");
        let oracle =
            |name: &str, _line: u32| (name == "leaf_cycles").then_some(Interval { lo: 0, hi: 7 });
        let with = arith_risks_with(&parsed.fns[0], &oracle);
        assert!(with.risks.is_empty(), "{:?}", with.risks);
        assert_eq!(with.ret, Some(Interval { lo: 0, hi: 56 }));
    }

    #[test]
    fn return_statements_join_into_the_summary() {
        let src = "fn t(n: u64) -> u64 { if n > 9 { return 100; } 3 }";
        let parsed = parse_file(&lex(src));
        let fl = arith_risks_with(&parsed.fns[0], &|_, _| None);
        assert_eq!(fl.ret, Some(Interval { lo: 3, hi: 100 }));
    }

    #[test]
    fn interval_join_is_a_hull() {
        let a = Interval { lo: 1, hi: 3 };
        let b = Interval { lo: 7, hi: 9 };
        assert_eq!(a.join(b), Interval { lo: 1, hi: 9 });
    }
}
