//! Tolerant recursive-descent parser for the Rust subset the workspace
//! uses.
//!
//! Consumes the token stream from [`lexer`](crate::lexer) (comments,
//! strings and lifetimes already stripped) and produces the
//! [`ast`](crate::ast) statement/expression trees the fact extractor
//! walks. The parser is *tolerant*: any construct it does not model
//! collapses into [`Expr::Opaque`] and the cursor always advances, so a
//! syntax shape outside the subset degrades analysis precision for that
//! expression instead of aborting the file.
//!
//! Zero dependencies, no `syn` — the grammar is hand-rolled because the
//! analyzer must keep working in the offline CI image and because the
//! subset is small: items, `impl`/`trait`/`mod` nesting, `fn` signatures,
//! and expression bodies with calls, method calls, indexing, macros,
//! closures, casts, struct literals and the control-flow forms.

use crate::ast::{Arm, BinOp, Binding, Block, Expr, LetStmt, PFn, Param, ParsedFile, Stmt};
use crate::lexer::{Tok, TokKind};

/// Parse one file's token stream into its function items.
pub fn parse_file(toks: &[Tok]) -> ParsedFile {
    let mut p = Parser {
        toks,
        pos: 0,
        fns: Vec::new(),
    };
    p.items(None, false, false);
    ParsedFile { fns: p.fns }
}

struct Parser<'t> {
    toks: &'t [Tok],
    pos: usize,
    fns: Vec<PFn>,
}

const PRIMITIVES: &[&str] = &[
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize", "f32",
    "f64", "bool", "char",
];

impl<'t> Parser<'t> {
    // ---- token helpers -------------------------------------------------

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    fn peek_at(&self, off: usize) -> Option<&Tok> {
        self.toks.get(self.pos + off)
    }

    fn line(&self) -> u32 {
        self.peek().map(|t| t.line).unwrap_or(0)
    }

    fn bump(&mut self) -> Option<&'t Tok> {
        let t = self.toks.get(self.pos);
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_punct(&self, s: &str) -> bool {
        self.peek().map(|t| t.is_punct(s)).unwrap_or(false)
    }

    fn at_punct2(&self, a: &str, b: &str) -> bool {
        self.at_punct(a) && self.peek_at(1).map(|t| t.is_punct(b)).unwrap_or(false)
    }

    fn at_ident(&self, s: &str) -> bool {
        self.peek().map(|t| t.is_ident(s)).unwrap_or(false)
    }

    fn eat_punct(&mut self, s: &str) -> bool {
        if self.at_punct(s) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn eat_ident(&mut self, s: &str) -> bool {
        if self.at_ident(s) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    /// `::` is two adjacent `:` tokens.
    fn at_path_sep(&self) -> bool {
        self.at_punct2(":", ":")
    }

    // ---- attributes ----------------------------------------------------

    /// Skip one `#[...]` / `#![...]` attribute; reports whether it was
    /// `#[cfg(test)]` or `#[test]`.
    fn skip_attr(&mut self) -> bool {
        debug_assert!(self.at_punct("#"));
        self.pos += 1;
        self.eat_punct("!");
        let mut is_test = false;
        if self.at_punct("[") {
            let mut depth = 0i32;
            let start = self.pos;
            while let Some(t) = self.peek() {
                if t.is_punct("[") {
                    depth += 1;
                } else if t.is_punct("]") {
                    depth -= 1;
                    if depth == 0 {
                        self.pos += 1;
                        break;
                    }
                }
                self.pos += 1;
            }
            let inner = &self.toks[start..self.pos.min(self.toks.len())];
            // `#[test]` or `#[cfg(test)]` / `#[cfg(all(test, ...))]`.
            if inner.len() == 3 && inner[1].is_ident("test") {
                is_test = true;
            }
            if inner.iter().any(|t| t.is_ident("cfg")) && inner.iter().any(|t| t.is_ident("test")) {
                is_test = true;
            }
        }
        is_test
    }

    /// Skip a run of attributes; true if any marked test code.
    fn skip_attrs(&mut self) -> bool {
        let mut test = false;
        while self.at_punct("#") {
            test |= self.skip_attr();
        }
        test
    }

    // ---- type collection -----------------------------------------------

    /// Skip a balanced `<...>` group starting at `<`. `->` arrows inside
    /// (`Fn() -> T`) do not close the group.
    fn skip_angles(&mut self) {
        debug_assert!(self.at_punct("<"));
        let mut depth = 0i32;
        let mut prev_dash = false;
        while let Some(t) = self.peek() {
            if t.is_punct("<") {
                depth += 1;
            } else if t.is_punct(">") && !prev_dash {
                depth -= 1;
                if depth == 0 {
                    self.pos += 1;
                    return;
                }
            }
            prev_dash = t.is_punct("-");
            self.pos += 1;
        }
    }

    /// Collect a type: consumes tokens until a stop punct or stop word at
    /// bracket depth zero. Adjacent word tokens are joined with a single
    /// space so `&mut MachineConfig` and `impl Fn(&mut X,u32)` stay
    /// readable and splittable.
    fn collect_type(&mut self, stop_puncts: &[&str], stop_words: &[&str]) -> String {
        let mut out = String::new();
        let mut depth = 0i32;
        let mut prev_dash = false;
        while let Some(t) = self.peek() {
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    "(" | "[" | "<" => depth += 1,
                    ">" if !prev_dash => {
                        if depth == 0 {
                            break;
                        }
                        depth -= 1;
                    }
                    ")" | "]" => {
                        if depth == 0 {
                            break;
                        }
                        depth -= 1;
                    }
                    s if depth == 0 && stop_puncts.contains(&s) => break,
                    _ => {}
                }
            } else if depth == 0 && stop_words.iter().any(|w| t.is_ident(w)) {
                break;
            }
            push_tok(&mut out, t);
            prev_dash = t.is_punct("-");
            self.pos += 1;
        }
        out
    }

    /// Collect the type after `as`. Greedy over path/ref/pointer/group
    /// syntax; a `<` after a primitive is a comparison, not generics.
    fn collect_cast_type(&mut self) -> String {
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(t) if t.is_punct("&") || t.is_punct("*") => {
                    push_tok(&mut out, t);
                    self.pos += 1;
                }
                Some(t) if t.is_ident("const") || t.is_ident("mut") || t.is_ident("dyn") => {
                    push_tok(&mut out, t);
                    self.pos += 1;
                }
                Some(t) if t.kind == TokKind::Ident => {
                    let prim = PRIMITIVES.contains(&t.text.as_str());
                    push_tok(&mut out, t);
                    self.pos += 1;
                    // Path continuation / generic arguments.
                    if self.at_path_sep() {
                        out.push_str("::");
                        self.pos += 2; // next segment via the outer loop
                    } else if self.at_punct("<") && !prim {
                        let start = self.pos;
                        self.skip_angles();
                        for t in &self.toks[start..self.pos] {
                            push_tok(&mut out, t);
                        }
                        return out;
                    } else {
                        return out;
                    }
                }
                Some(t) if t.is_punct("(") || t.is_punct("[") => {
                    // Grouped type: consume balanced.
                    let close = if t.is_punct("(") { ")" } else { "]" };
                    let open = t.text.clone();
                    let mut depth = 0i32;
                    while let Some(t) = self.peek() {
                        if t.is_punct(&open) {
                            depth += 1;
                        } else if t.is_punct(close) {
                            depth -= 1;
                            push_tok(&mut out, t);
                            self.pos += 1;
                            if depth == 0 {
                                break;
                            }
                            continue;
                        }
                        push_tok(&mut out, t);
                        self.pos += 1;
                    }
                    return out;
                }
                _ => return out,
            }
        }
    }

    // ---- items ---------------------------------------------------------

    /// Parse items until EOF or (when `stop_at_brace`) the closing `}` of
    /// the enclosing block.
    fn items(&mut self, self_ty: Option<&str>, in_test: bool, stop_at_brace: bool) {
        loop {
            if self.peek().is_none() {
                return;
            }
            if self.at_punct("}") {
                if stop_at_brace {
                    self.pos += 1;
                }
                return;
            }
            let attr_test = self.skip_attrs();
            // Visibility.
            if self.eat_ident("pub") && self.at_punct("(") {
                self.skip_balanced("(", ")");
            }
            // Fn qualifiers.
            let mut saw_const = false;
            loop {
                if self.at_ident("const") && self.peek_at(1).map(|t| t.is_ident("fn")) == Some(true)
                {
                    self.pos += 1;
                    saw_const = true;
                } else if self.at_ident("unsafe") || self.at_ident("async") {
                    self.pos += 1;
                } else if self.at_ident("extern") {
                    self.pos += 1; // `extern` (the ABI string is stripped)
                } else {
                    break;
                }
            }
            let _ = saw_const;
            match self.peek() {
                Some(t) if t.is_ident("fn") => {
                    let f = self.parse_fn(self_ty, in_test || attr_test);
                    self.fns.push(f);
                }
                Some(t) if t.is_ident("mod") => {
                    self.pos += 1;
                    self.bump(); // name
                    if self.eat_punct("{") {
                        // A module resets the Self type; cfg(test) is
                        // inherited by everything inside.
                        self.items(None, in_test || attr_test, true);
                    } else {
                        self.eat_punct(";");
                    }
                }
                Some(t) if t.is_ident("impl") => {
                    self.pos += 1;
                    if self.at_punct("<") {
                        self.skip_angles();
                    }
                    let first = self.impl_path();
                    let ty = if self.eat_ident("for") {
                        self.impl_path()
                    } else {
                        first
                    };
                    // Skip where clause up to the body.
                    while !self.at_punct("{") && self.peek().is_some() {
                        if self.at_punct("<") {
                            self.skip_angles();
                        } else {
                            self.pos += 1;
                        }
                    }
                    if self.eat_punct("{") {
                        self.items(Some(&ty), in_test || attr_test, true);
                    }
                }
                Some(t) if t.is_ident("trait") => {
                    self.pos += 1;
                    let name = self.bump().map(|t| t.text.clone()).unwrap_or_default();
                    while !self.at_punct("{") && self.peek().is_some() {
                        if self.at_punct("<") {
                            self.skip_angles();
                        } else {
                            self.pos += 1;
                        }
                    }
                    if self.eat_punct("{") {
                        self.items(Some(&name), in_test || attr_test, true);
                    }
                }
                Some(t)
                    if t.is_ident("struct")
                        || t.is_ident("enum")
                        || t.is_ident("union")
                        || t.is_ident("macro_rules") =>
                {
                    self.skip_item_with_braces();
                }
                Some(t)
                    if t.is_ident("const")
                        || t.is_ident("static")
                        || t.is_ident("type")
                        || t.is_ident("use") =>
                {
                    self.skip_to_semi();
                }
                Some(_) => {
                    self.pos += 1;
                }
                None => return,
            }
        }
    }

    /// The type path in an `impl` header: segments plus one trailing
    /// generic group, reduced to the head identifier (`Simulator<'cfg>` →
    /// `Simulator`, `codec::Codec` → `Codec`).
    fn impl_path(&mut self) -> String {
        let mut last = String::new();
        loop {
            match self.peek() {
                Some(t) if t.kind == TokKind::Ident && !t.is_ident("for") => {
                    last = t.text.clone();
                    self.pos += 1;
                    if self.at_punct("<") {
                        self.skip_angles();
                    }
                    if self.at_path_sep() {
                        self.pos += 2;
                        continue;
                    }
                    break;
                }
                Some(t) if t.is_punct("&") || t.is_punct("(") || t.is_punct("[") => {
                    // `impl Trait for &T` / tuple impls — rare; take the
                    // inner head by skipping the sigil.
                    self.pos += 1;
                }
                _ => break,
            }
        }
        last
    }

    /// Skip an item that may end in `;` or a balanced `{...}` /
    /// tuple-struct `(...);`.
    fn skip_item_with_braces(&mut self) {
        while let Some(t) = self.peek() {
            if t.is_punct("{") {
                self.skip_balanced("{", "}");
                return;
            }
            if t.is_punct("(") {
                self.skip_balanced("(", ")");
                self.eat_punct(";");
                return;
            }
            if t.is_punct(";") {
                self.pos += 1;
                return;
            }
            if t.is_punct("<") {
                self.skip_angles();
                continue;
            }
            self.pos += 1;
        }
    }

    /// Skip to the `;` ending a const/static/type/use item, tolerating
    /// nested braces (const arrays of struct literals).
    fn skip_to_semi(&mut self) {
        let mut depth = 0i32;
        while let Some(t) = self.peek() {
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    "{" | "(" | "[" => depth += 1,
                    "}" | ")" | "]" => depth -= 1,
                    ";" if depth <= 0 => {
                        self.pos += 1;
                        return;
                    }
                    _ => {}
                }
            }
            self.pos += 1;
        }
    }

    fn skip_balanced(&mut self, open: &str, close: &str) {
        let mut depth = 0i32;
        while let Some(t) = self.peek() {
            if t.is_punct(open) {
                depth += 1;
            } else if t.is_punct(close) {
                depth -= 1;
                if depth == 0 {
                    self.pos += 1;
                    return;
                }
            }
            self.pos += 1;
        }
    }

    // ---- functions -----------------------------------------------------

    fn parse_fn(&mut self, self_ty: Option<&str>, in_test: bool) -> PFn {
        let decl_line = self.line();
        self.eat_ident("fn");
        let name = self.bump().map(|t| t.text.clone()).unwrap_or_default();
        if self.at_punct("<") {
            self.skip_angles();
        }
        let mut params = Vec::new();
        if self.eat_punct("(") {
            loop {
                self.skip_attrs();
                if self.eat_punct(")") || self.peek().is_none() {
                    break;
                }
                if self.eat_punct(",") {
                    continue;
                }
                // `&self` / `&mut self` / `mut self` / `self: ...`.
                while self.at_punct("&") || self.at_ident("mut") {
                    self.pos += 1;
                }
                if self.eat_ident("self") {
                    if self.eat_punct(":") {
                        self.collect_type(&[",", ")"], &[]);
                    }
                    params.push(Param {
                        name: "self".into(),
                        ty: String::new(),
                    });
                    continue;
                }
                // Pattern up to the `:` at depth zero, then the type.
                let pat_start = self.pos;
                let mut depth = 0i32;
                while let Some(t) = self.peek() {
                    if t.kind == TokKind::Punct {
                        match t.text.as_str() {
                            "(" | "[" | "<" | "{" => depth += 1,
                            ")" if depth == 0 => break,
                            ")" | "]" | ">" | "}" => depth -= 1,
                            ":" if depth == 0 => break,
                            "," if depth == 0 => break,
                            _ => {}
                        }
                    }
                    self.pos += 1;
                }
                let pat: Vec<&Tok> = self.toks[pat_start..self.pos].iter().collect();
                let pname = pat
                    .iter()
                    .find(|t| t.kind == TokKind::Ident && !t.is_ident("mut") && !t.is_ident("ref"))
                    .map(|t| t.text.clone())
                    .unwrap_or_default();
                let ty = if self.eat_punct(":") {
                    self.collect_type(&[",", ")"], &[])
                } else {
                    String::new()
                };
                params.push(Param { name: pname, ty });
            }
        }
        let mut ret = String::new();
        if self.at_punct2("-", ">") {
            self.pos += 2;
            ret = self.collect_type(&["{", ";"], &["where"]);
        }
        if self.at_ident("where") {
            // Skip the where clause; `Fn(..)` bounds hide in angles.
            while !self.at_punct("{") && !self.at_punct(";") && self.peek().is_some() {
                if self.at_punct("<") {
                    self.skip_angles();
                } else {
                    self.pos += 1;
                }
            }
        }
        let (body, end_line) = if self.at_punct("{") {
            let b = self.parse_block();
            let last = self.pos.saturating_sub(1).min(self.toks.len() - 1);
            (b, self.toks[last].line)
        } else {
            self.eat_punct(";");
            (Vec::new(), decl_line)
        };
        PFn {
            name,
            self_ty: self_ty.map(str::to_string),
            decl_line,
            end_line,
            in_test,
            params,
            ret,
            body,
        }
    }

    // ---- statements ----------------------------------------------------

    /// Parse `{ ... }`; the cursor must be at the `{`.
    fn parse_block(&mut self) -> Block {
        let mut stmts = Vec::new();
        if !self.eat_punct("{") {
            return stmts;
        }
        loop {
            match self.peek() {
                None => return stmts,
                Some(t) if t.is_punct("}") => {
                    self.pos += 1;
                    return stmts;
                }
                Some(t) if t.is_punct(";") => {
                    self.pos += 1;
                }
                _ => {
                    let before = self.pos;
                    if let Some(s) = self.parse_stmt() {
                        stmts.push(s);
                    }
                    if self.pos == before {
                        self.pos += 1; // never stall
                    }
                }
            }
        }
    }

    fn parse_stmt(&mut self) -> Option<Stmt> {
        let test_attr = self.skip_attrs();
        match self.peek() {
            Some(t) if t.is_ident("let") => Some(Stmt::Let(self.parse_let())),
            Some(t) if t.is_ident("fn") => {
                // Nested fn: recorded as its own item.
                let f = self.parse_fn(None, test_attr);
                self.fns.push(f);
                None
            }
            Some(t)
                if t.is_ident("struct")
                    || t.is_ident("enum")
                    || t.is_ident("impl")
                    || t.is_ident("mod")
                    || t.is_ident("macro_rules") =>
            {
                self.skip_item_with_braces();
                None
            }
            Some(t)
                if t.is_ident("const")
                    || t.is_ident("static")
                    || t.is_ident("use")
                    || t.is_ident("type") =>
            {
                self.skip_to_semi();
                None
            }
            Some(_) => {
                let e = self.parse_expr(false);
                self.eat_punct(";");
                Some(Stmt::Expr(e))
            }
            None => None,
        }
    }

    fn parse_let(&mut self) -> LetStmt {
        let line = self.line();
        self.eat_ident("let");
        // Pattern up to `:` / `=` / `;` at depth zero.
        let pat_start = self.pos;
        let mut depth = 0i32;
        while let Some(t) = self.peek() {
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    "(" | "[" | "{" | "<" => depth += 1,
                    ")" | "]" | "}" | ">" => depth -= 1,
                    ":" | "=" | ";" if depth == 0 => break,
                    _ => {}
                }
            }
            self.pos += 1;
        }
        let bindings = extract_bindings(&self.toks[pat_start..self.pos]);
        let ty = if self.eat_punct(":") {
            Some(self.collect_type(&["=", ";"], &[]))
        } else {
            None
        };
        let init = if self.eat_punct("=") {
            Some(self.parse_expr(false))
        } else {
            None
        };
        let else_block = if self.eat_ident("else") {
            Some(self.parse_block())
        } else {
            None
        };
        self.eat_punct(";");
        LetStmt {
            bindings,
            ty,
            init,
            else_block,
            line,
        }
    }

    // ---- expressions ---------------------------------------------------

    /// `no_struct`: in `if`/`while`/`match`/`for` headers a `{` opens the
    /// body, never a struct literal.
    fn parse_expr(&mut self, no_struct: bool) -> Expr {
        self.parse_assign(no_struct)
    }

    fn parse_assign(&mut self, ns: bool) -> Expr {
        let lhs = self.parse_range(ns);
        let line = self.line();
        // Plain `=` (not `==`, not `=>`).
        if self.at_punct("=")
            && !self.peek_at(1).map(|t| t.is_punct("=")).unwrap_or(false)
            && !self.peek_at(1).map(|t| t.is_punct(">")).unwrap_or(false)
        {
            self.pos += 1;
            let rhs = self.parse_assign(ns);
            return Expr::Assign {
                op: None,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                line,
            };
        }
        // Compound assignment: op followed by `=`.
        let compound = match self.peek() {
            Some(t) if t.kind == TokKind::Punct => match t.text.as_str() {
                "+" => Some((1, BinOp::Add)),
                "-" => Some((1, BinOp::Sub)),
                "*" => Some((1, BinOp::Mul)),
                "/" => Some((1, BinOp::Div)),
                "%" => Some((1, BinOp::Rem)),
                "&" | "|" | "^" => Some((1, BinOp::Other)),
                "<" if self.at_punct2("<", "<") => Some((2, BinOp::Other)),
                ">" if self.at_punct2(">", ">") => Some((2, BinOp::Other)),
                _ => None,
            },
            _ => None,
        };
        if let Some((oplen, op)) = compound {
            if self
                .peek_at(oplen)
                .map(|t| t.is_punct("="))
                .unwrap_or(false)
                && !self
                    .peek_at(oplen + 1)
                    .map(|t| t.is_punct("="))
                    .unwrap_or(false)
            {
                self.pos += oplen + 1;
                let rhs = self.parse_assign(ns);
                return Expr::Assign {
                    op: Some(op),
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                    line,
                };
            }
        }
        lhs
    }

    fn parse_range(&mut self, ns: bool) -> Expr {
        if self.at_punct2(".", ".") {
            self.pos += 2;
            self.eat_punct("=");
            let hi = if self.range_operand_follows() {
                Some(Box::new(self.parse_or(ns)))
            } else {
                None
            };
            return Expr::Range { lo: None, hi };
        }
        let lo = self.parse_or(ns);
        if self.at_punct2(".", ".") {
            self.pos += 2;
            self.eat_punct("=");
            let hi = if self.range_operand_follows() {
                Some(Box::new(self.parse_or(ns)))
            } else {
                None
            };
            return Expr::Range {
                lo: Some(Box::new(lo)),
                hi,
            };
        }
        lo
    }

    fn range_operand_follows(&self) -> bool {
        match self.peek() {
            Some(t) if t.kind == TokKind::Punct => {
                matches!(t.text.as_str(), "(" | "&" | "*" | "-" | "!" | "[")
            }
            Some(_) => true,
            None => false,
        }
    }

    fn parse_or(&mut self, ns: bool) -> Expr {
        let mut lhs = self.parse_and(ns);
        while self.at_punct2("|", "|") {
            let line = self.line();
            self.pos += 2;
            let rhs = self.parse_and(ns);
            lhs = Expr::Binary {
                op: BinOp::Other,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                line,
            };
        }
        lhs
    }

    fn parse_and(&mut self, ns: bool) -> Expr {
        let mut lhs = self.parse_cmp(ns);
        while self.at_punct2("&", "&") {
            let line = self.line();
            self.pos += 2;
            let rhs = self.parse_cmp(ns);
            lhs = Expr::Binary {
                op: BinOp::Other,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                line,
            };
        }
        lhs
    }

    fn parse_cmp(&mut self, ns: bool) -> Expr {
        let mut lhs = self.parse_bitor(ns);
        loop {
            let line = self.line();
            let (take, op) = if self.at_punct2("=", "=") || self.at_punct2("!", "=") {
                (2, BinOp::Cmp)
            } else if self.at_punct2("<", "=") {
                (2, BinOp::Le)
            } else if self.at_punct2(">", "=") {
                (2, BinOp::Ge)
            } else if self.at_punct("<") && !self.at_punct2("<", "<") {
                (1, BinOp::Lt)
            } else if self.at_punct(">") && !self.at_punct2(">", ">") {
                (1, BinOp::Gt)
            } else {
                break;
            };
            self.pos += take;
            let rhs = self.parse_bitor(ns);
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                line,
            };
        }
        lhs
    }

    fn parse_bitor(&mut self, ns: bool) -> Expr {
        let mut lhs = self.parse_bitxor(ns);
        while self.at_punct("|")
            && !self.at_punct2("|", "|")
            && !self.peek_at(1).map(|t| t.is_punct("=")).unwrap_or(false)
        {
            let line = self.line();
            self.pos += 1;
            let rhs = self.parse_bitxor(ns);
            lhs = Expr::Binary {
                op: BinOp::Other,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                line,
            };
        }
        lhs
    }

    fn parse_bitxor(&mut self, ns: bool) -> Expr {
        let mut lhs = self.parse_bitand(ns);
        while self.at_punct("^") && !self.peek_at(1).map(|t| t.is_punct("=")).unwrap_or(false) {
            let line = self.line();
            self.pos += 1;
            let rhs = self.parse_bitand(ns);
            lhs = Expr::Binary {
                op: BinOp::Other,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                line,
            };
        }
        lhs
    }

    fn parse_bitand(&mut self, ns: bool) -> Expr {
        let mut lhs = self.parse_shift(ns);
        while self.at_punct("&")
            && !self.at_punct2("&", "&")
            && !self.peek_at(1).map(|t| t.is_punct("=")).unwrap_or(false)
        {
            let line = self.line();
            self.pos += 1;
            let rhs = self.parse_shift(ns);
            lhs = Expr::Binary {
                op: BinOp::Other,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                line,
            };
        }
        lhs
    }

    fn parse_shift(&mut self, ns: bool) -> Expr {
        let mut lhs = self.parse_add(ns);
        loop {
            let line = self.line();
            if (self.at_punct2("<", "<") || self.at_punct2(">", ">"))
                && !self.peek_at(2).map(|t| t.is_punct("=")).unwrap_or(false)
            {
                self.pos += 2;
                let rhs = self.parse_add(ns);
                lhs = Expr::Binary {
                    op: BinOp::Other,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                    line,
                };
            } else {
                return lhs;
            }
        }
    }

    fn parse_add(&mut self, ns: bool) -> Expr {
        let mut lhs = self.parse_mul(ns);
        loop {
            let line = self.line();
            let op = if self.at_punct("+") {
                BinOp::Add
            } else if self.at_punct("-") {
                BinOp::Sub
            } else {
                return lhs;
            };
            if self.peek_at(1).map(|t| t.is_punct("=")).unwrap_or(false)
                || (op == BinOp::Sub && self.peek_at(1).map(|t| t.is_punct(">")).unwrap_or(false))
            {
                return lhs; // `+=` / `-=` / `->`
            }
            self.pos += 1;
            let rhs = self.parse_mul(ns);
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                line,
            };
        }
    }

    fn parse_mul(&mut self, ns: bool) -> Expr {
        let mut lhs = self.parse_cast(ns);
        loop {
            let line = self.line();
            let op = if self.at_punct("*") {
                BinOp::Mul
            } else if self.at_punct("/") {
                BinOp::Div
            } else if self.at_punct("%") {
                BinOp::Rem
            } else {
                return lhs;
            };
            if self.peek_at(1).map(|t| t.is_punct("=")).unwrap_or(false) {
                return lhs; // compound assignment
            }
            self.pos += 1;
            let rhs = self.parse_cast(ns);
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                line,
            };
        }
    }

    fn parse_cast(&mut self, ns: bool) -> Expr {
        let mut e = self.parse_unary(ns);
        while self.at_ident("as") {
            let line = self.line();
            self.pos += 1;
            let ty = self.collect_cast_type();
            e = Expr::Cast {
                expr: Box::new(e),
                ty,
                line,
            };
        }
        e
    }

    fn parse_unary(&mut self, ns: bool) -> Expr {
        if self.at_punct("&") && !self.at_punct2("&", "&") {
            self.pos += 1;
            let mutable = self.eat_ident("mut");
            let inner = Box::new(self.parse_unary(ns));
            return if mutable {
                Expr::MutBorrow(inner)
            } else {
                Expr::Unary(inner)
            };
        }
        if self.at_punct2("&", "&") {
            // `&&x` in expression-head position: double reference.
            self.pos += 2;
            let mutable = self.eat_ident("mut");
            let inner = Box::new(self.parse_unary(ns));
            return if mutable {
                Expr::MutBorrow(inner)
            } else {
                Expr::Unary(inner)
            };
        }
        if self.at_punct("*") || self.at_punct("-") || self.at_punct("!") {
            self.pos += 1;
            return Expr::Unary(Box::new(self.parse_unary(ns)));
        }
        self.parse_postfix(ns)
    }

    fn parse_postfix(&mut self, ns: bool) -> Expr {
        let mut e = self.parse_primary(ns);
        loop {
            let line = self.line();
            if self.at_punct(".") && !self.at_punct2(".", ".") {
                match self.peek_at(1) {
                    Some(t) if t.kind == TokKind::Ident => {
                        let name = t.text.clone();
                        self.pos += 2;
                        // Turbofish.
                        if self.at_path_sep()
                            && self.peek_at(2).map(|t| t.is_punct("<")).unwrap_or(false)
                        {
                            self.pos += 2;
                            self.skip_angles();
                        }
                        if self.at_punct("(") {
                            let args = self.parse_call_args();
                            e = Expr::MethodCall {
                                recv: Box::new(e),
                                name,
                                args,
                                line,
                            };
                        } else {
                            e = Expr::Field {
                                base: Box::new(e),
                                name,
                                line,
                            };
                        }
                    }
                    Some(t) if t.kind == TokKind::Num => {
                        let name = t.text.clone();
                        self.pos += 2;
                        e = Expr::Field {
                            base: Box::new(e),
                            name,
                            line,
                        };
                    }
                    _ => {
                        self.pos += 1; // stray dot
                    }
                }
            } else if self.at_punct("(") {
                let args = self.parse_call_args();
                e = Expr::Call {
                    callee: Box::new(e),
                    args,
                    line,
                };
            } else if self.at_punct("[") {
                self.pos += 1;
                let idx = self.parse_expr(false);
                self.eat_punct("]");
                e = Expr::Index {
                    base: Box::new(e),
                    index: Box::new(idx),
                    line,
                };
            } else if self.at_punct("?") {
                self.pos += 1;
                e = Expr::Try(Box::new(e));
            } else {
                return e;
            }
        }
    }

    /// `( a, b, c )` — cursor on the `(`.
    fn parse_call_args(&mut self) -> Vec<Expr> {
        let mut args = Vec::new();
        self.eat_punct("(");
        let mut slot_filled = false;
        loop {
            match self.peek() {
                None => return args,
                Some(t) if t.is_punct(")") => {
                    self.pos += 1;
                    if !slot_filled && !args.is_empty() {
                        args.push(Expr::Opaque(self.line()));
                    }
                    return args;
                }
                Some(t) if t.is_punct(",") => {
                    // A separator with no expression since the previous
                    // one means the lexer dropped a literal argument.
                    // Keep the slot so positional lookups downstream
                    // (closure-parameter typing) stay aligned.
                    if !slot_filled {
                        args.push(Expr::Opaque(self.line()));
                    }
                    slot_filled = false;
                    self.pos += 1;
                }
                _ => {
                    let before = self.pos;
                    args.push(self.parse_expr(false));
                    slot_filled = true;
                    if self.pos == before {
                        self.pos += 1;
                    }
                }
            }
        }
    }

    fn parse_primary(&mut self, ns: bool) -> Expr {
        let line = self.line();
        let t = match self.peek() {
            Some(t) => t,
            None => return Expr::Opaque(line),
        };
        if t.kind == TokKind::Num {
            let text = t.text.clone();
            self.pos += 1;
            return match parse_int_literal(&text) {
                Some(val) => Expr::Num { val, line },
                None => Expr::Lit(line),
            };
        }
        if t.kind == TokKind::Punct {
            return match t.text.as_str() {
                "(" => {
                    self.pos += 1;
                    let mut elems = Vec::new();
                    let mut trailing_comma = false;
                    loop {
                        match self.peek() {
                            None => break,
                            Some(t) if t.is_punct(")") => {
                                self.pos += 1;
                                break;
                            }
                            Some(t) if t.is_punct(",") => {
                                trailing_comma = true;
                                self.pos += 1;
                            }
                            _ => {
                                let before = self.pos;
                                elems.push(self.parse_expr(false));
                                if self.pos == before {
                                    self.pos += 1;
                                }
                            }
                        }
                    }
                    if elems.len() == 1 && !trailing_comma {
                        elems.pop().unwrap()
                    } else {
                        Expr::Tuple { elems, line }
                    }
                }
                "[" => {
                    self.pos += 1;
                    let mut elems = Vec::new();
                    loop {
                        match self.peek() {
                            None => break,
                            Some(t) if t.is_punct("]") => {
                                self.pos += 1;
                                break;
                            }
                            Some(t) if t.is_punct(",") || t.is_punct(";") => {
                                self.pos += 1;
                            }
                            _ => {
                                let before = self.pos;
                                elems.push(self.parse_expr(false));
                                if self.pos == before {
                                    self.pos += 1;
                                }
                            }
                        }
                    }
                    Expr::ArrayLit { elems, line }
                }
                "{" => Expr::Block(self.parse_block()),
                "|" => self.parse_closure(line),
                "#" => {
                    // Expression attribute (e.g. `#[cfg(debug_assertions)]`
                    // on a block): skip and analyze the expression anyway —
                    // conservative for hot-path rules.
                    self.skip_attrs();
                    self.parse_expr(ns)
                }
                // A lexer-dropped literal can strand a prefix operator
                // (`*b"SIM_"` lexes to a bare `*`), landing the operand
                // parse on the enclosing list's closer. That token belongs
                // to the list parser — consuming it here desynchronizes
                // every statement after the literal.
                ")" | "]" | "}" | "," | ";" => Expr::Opaque(line),
                _ => {
                    self.pos += 1;
                    Expr::Opaque(line)
                }
            };
        }
        // Identifier / keyword.
        match t.text.as_str() {
            "true" | "false" => {
                self.pos += 1;
                Expr::Lit(line)
            }
            "self" => {
                self.pos += 1;
                Expr::SelfVal(line)
            }
            "if" => self.parse_if(),
            "match" => self.parse_match(),
            "while" => self.parse_while(),
            "loop" => {
                self.pos += 1;
                let body = self.parse_block();
                Expr::While {
                    bindings: Vec::new(),
                    cond: None,
                    body,
                }
            }
            "for" => self.parse_for(),
            "return" => {
                self.pos += 1;
                let stop = matches!(
                    self.peek(),
                    None | Some(Tok {
                        kind: TokKind::Punct,
                        ..
                    })
                ) && (self.at_punct(";") || self.at_punct("}") || self.at_punct(","));
                if stop {
                    Expr::Return(None)
                } else {
                    Expr::Return(Some(Box::new(self.parse_expr(ns))))
                }
            }
            "break" | "continue" => {
                self.pos += 1;
                // Optional label was stripped with the lifetime syntax.
                Expr::Opaque(line)
            }
            "move" => {
                self.pos += 1;
                self.parse_closure(line)
            }
            "unsafe" => {
                self.pos += 1;
                if self.at_punct("{") {
                    Expr::Block(self.parse_block())
                } else {
                    Expr::Opaque(line)
                }
            }
            _ => self.parse_path_expr(ns, line),
        }
    }

    fn parse_path_expr(&mut self, ns: bool, line: u32) -> Expr {
        let mut segs = vec![self.bump().map(|t| t.text.clone()).unwrap_or_default()];
        loop {
            if self.at_path_sep() {
                match self.peek_at(2) {
                    Some(t) if t.kind == TokKind::Ident => {
                        segs.push(t.text.clone());
                        self.pos += 3;
                    }
                    Some(t) if t.is_punct("<") => {
                        self.pos += 2;
                        self.skip_angles();
                    }
                    _ => break,
                }
            } else {
                break;
            }
        }
        // Macro invocation.
        if self.at_punct("!")
            && self
                .peek_at(1)
                .map(|t| t.is_punct("(") || t.is_punct("[") || t.is_punct("{"))
                .unwrap_or(false)
        {
            self.pos += 1;
            let name = segs.pop().unwrap_or_default();
            let args = match self
                .peek()
                .map(|t| t.text.clone())
                .unwrap_or_default()
                .as_str()
            {
                "(" => self.parse_macro_args("(", ")"),
                "[" => self.parse_macro_args("[", "]"),
                _ => {
                    self.skip_balanced("{", "}");
                    Vec::new()
                }
            };
            return Expr::Macro { name, args, line };
        }
        // Struct literal.
        let head_upper = segs
            .last()
            .and_then(|s| s.chars().next())
            .map(|c| c.is_uppercase())
            .unwrap_or(false);
        if self.at_punct("{") && !ns && head_upper {
            self.pos += 1;
            let mut fields = Vec::new();
            let mut rest = None;
            loop {
                match self.peek() {
                    None => break,
                    Some(t) if t.is_punct("}") => {
                        self.pos += 1;
                        break;
                    }
                    Some(t) if t.is_punct(",") => {
                        self.pos += 1;
                    }
                    Some(t) if t.is_punct(".") => {
                        // `..base`
                        self.pos += 1;
                        self.eat_punct(".");
                        if !self.at_punct("}") {
                            rest = Some(Box::new(self.parse_expr(false)));
                        }
                    }
                    Some(t) if t.kind == TokKind::Ident => {
                        let fname = t.text.clone();
                        let fline = t.line;
                        self.pos += 1;
                        if self.eat_punct(":") {
                            let v = self.parse_expr(false);
                            fields.push((fname, v));
                        } else {
                            // Shorthand `Struct { field }`.
                            let v = Expr::Path {
                                segs: vec![fname.clone()],
                                line: fline,
                            };
                            fields.push((fname, v));
                        }
                    }
                    _ => {
                        self.pos += 1;
                    }
                }
            }
            return Expr::StructLit {
                path: segs,
                fields,
                rest,
                line,
            };
        }
        Expr::Path { segs, line }
    }

    /// Macro arguments: best-effort comma-separated expressions. The
    /// lexer already stripped string literals, so format strings leave
    /// only their interpolation commas behind — stray punctuation is
    /// consumed token-by-token as `Opaque`.
    fn parse_macro_args(&mut self, open: &str, close: &str) -> Vec<Expr> {
        let mut args = Vec::new();
        self.eat_punct(open);
        loop {
            match self.peek() {
                None => return args,
                Some(t) if t.is_punct(close) => {
                    self.pos += 1;
                    return args;
                }
                // `;` separates the element and count of `vec![elem; n]`
                // (and array repeats) — treat it like a comma so the
                // count lands in its own argument slot.
                Some(t) if t.is_punct(",") || t.is_punct(";") => {
                    self.pos += 1;
                }
                _ => {
                    let before = self.pos;
                    args.push(self.parse_expr(false));
                    if self.pos == before {
                        self.pos += 1;
                    }
                }
            }
        }
    }

    fn parse_closure(&mut self, line: u32) -> Expr {
        let mut params = Vec::new();
        if self.at_punct2("|", "|") {
            self.pos += 2;
        } else if self.eat_punct("|") {
            loop {
                match self.peek() {
                    None => break,
                    Some(t) if t.is_punct("|") => {
                        self.pos += 1;
                        break;
                    }
                    Some(t) if t.is_punct(",") => {
                        self.pos += 1;
                    }
                    _ => {
                        // One parameter: pattern [: type].
                        let pat_start = self.pos;
                        let mut depth = 0i32;
                        while let Some(t) = self.peek() {
                            if t.kind == TokKind::Punct {
                                match t.text.as_str() {
                                    "(" | "[" | "<" => depth += 1,
                                    ")" | "]" | ">" => depth -= 1,
                                    "|" | "," if depth == 0 => break,
                                    ":" if depth == 0 => break,
                                    _ => {}
                                }
                            }
                            self.pos += 1;
                        }
                        let name = self.toks[pat_start..self.pos]
                            .iter()
                            .find(|t| {
                                t.kind == TokKind::Ident && !t.is_ident("mut") && !t.is_ident("ref")
                            })
                            .map(|t| t.text.clone())
                            .unwrap_or_else(|| "_".into());
                        if self.eat_punct(":") {
                            self.collect_type(&[",", "|"], &[]);
                        }
                        params.push(name);
                    }
                }
            }
        }
        let body = if self.at_punct2("-", ">") {
            self.pos += 2;
            self.collect_type(&["{"], &[]);
            Expr::Block(self.parse_block())
        } else {
            self.parse_expr(false)
        };
        Expr::Closure {
            params,
            body: Box::new(body),
            line,
        }
    }

    fn parse_if(&mut self) -> Expr {
        self.eat_ident("if");
        let (bindings, cond) = self.parse_cond();
        let then = self.parse_block();
        let else_ = if self.eat_ident("else") {
            if self.at_ident("if") {
                Some(Box::new(self.parse_if()))
            } else {
                Some(Box::new(Expr::Block(self.parse_block())))
            }
        } else {
            None
        };
        Expr::If {
            bindings,
            cond: Box::new(cond),
            then,
            else_,
        }
    }

    fn parse_while(&mut self) -> Expr {
        self.eat_ident("while");
        let (bindings, cond) = self.parse_cond();
        let body = self.parse_block();
        Expr::While {
            bindings,
            cond: Some(Box::new(cond)),
            body,
        }
    }

    /// The `[let PAT =] expr` header of an `if`/`while`.
    fn parse_cond(&mut self) -> (Vec<Binding>, Expr) {
        if self.eat_ident("let") {
            let pat_start = self.pos;
            let mut depth = 0i32;
            while let Some(t) = self.peek() {
                if t.kind == TokKind::Punct {
                    match t.text.as_str() {
                        "(" | "[" | "{" | "<" => depth += 1,
                        ")" | "]" | "}" | ">" => depth -= 1,
                        "=" if depth == 0 => break,
                        _ => {}
                    }
                }
                self.pos += 1;
            }
            let bindings = extract_bindings(&self.toks[pat_start..self.pos]);
            self.eat_punct("=");
            let scrut = self.parse_expr(true);
            (bindings, scrut)
        } else {
            (Vec::new(), self.parse_expr(true))
        }
    }

    fn parse_for(&mut self) -> Expr {
        self.eat_ident("for");
        let pat_start = self.pos;
        let mut depth = 0i32;
        while let Some(t) = self.peek() {
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    "(" | "[" | "{" | "<" => depth += 1,
                    ")" | "]" | "}" | ">" => depth -= 1,
                    _ => {}
                }
            } else if depth == 0 && t.is_ident("in") {
                break;
            }
            self.pos += 1;
        }
        let bindings = extract_bindings(&self.toks[pat_start..self.pos]);
        self.eat_ident("in");
        let iter = self.parse_expr(true);
        let body = self.parse_block();
        Expr::For {
            bindings,
            iter: Box::new(iter),
            body,
        }
    }

    fn parse_match(&mut self) -> Expr {
        self.eat_ident("match");
        let scrutinee = self.parse_expr(true);
        let mut arms = Vec::new();
        if !self.eat_punct("{") {
            return Expr::Match {
                scrutinee: Box::new(scrutinee),
                arms,
            };
        }
        loop {
            match self.peek() {
                None => break,
                Some(t) if t.is_punct("}") => {
                    self.pos += 1;
                    break;
                }
                Some(t) if t.is_punct(",") => {
                    self.pos += 1;
                }
                _ => {
                    self.skip_attrs();
                    // Pattern: up to `=>` or a guard `if` at depth zero.
                    let pat_start = self.pos;
                    let mut depth = 0i32;
                    let mut guard_at = None;
                    while let Some(t) = self.peek() {
                        if t.kind == TokKind::Punct {
                            match t.text.as_str() {
                                "(" | "[" | "{" | "<" => depth += 1,
                                ")" | "]" | ">" => depth -= 1,
                                "}" => {
                                    if depth == 0 {
                                        break; // malformed arm
                                    }
                                    depth -= 1;
                                }
                                "=" if depth == 0
                                    && self
                                        .peek_at(1)
                                        .map(|t| t.is_punct(">"))
                                        .unwrap_or(false) =>
                                {
                                    break;
                                }
                                _ => {}
                            }
                        } else if depth == 0 && t.is_ident("if") {
                            guard_at = Some(self.pos);
                            break;
                        }
                        self.pos += 1;
                    }
                    let bindings = extract_bindings(&self.toks[pat_start..self.pos]);
                    let guard = if guard_at.is_some() {
                        self.eat_ident("if");
                        Some(self.parse_expr(true))
                    } else {
                        None
                    };
                    if self.at_punct2("=", ">") {
                        self.pos += 2;
                    }
                    let before = self.pos;
                    let body = self.parse_expr(false);
                    if self.pos == before {
                        self.pos += 1;
                    }
                    arms.push(Arm {
                        bindings,
                        guard,
                        body,
                    });
                }
            }
        }
        Expr::Match {
            scrutinee: Box::new(scrutinee),
            arms,
        }
    }
}

/// Append a token to a type string, spacing apart adjacent word tokens.
/// Parses an integer literal token's value: underscores and a trailing
/// type suffix are stripped, `0x`/`0o`/`0b` radix prefixes are honoured.
/// Floats and out-of-range values return `None`.
fn parse_int_literal(text: &str) -> Option<i128> {
    let cleaned: String = text.chars().filter(|&c| c != '_').collect();
    let mut s = cleaned.as_str();
    for suffix in [
        "u128", "i128", "usize", "isize", "u64", "i64", "u32", "i32", "u16", "i16", "u8", "i8",
    ] {
        if let Some(rest) = s.strip_suffix(suffix) {
            s = rest;
            break;
        }
    }
    if s.is_empty() {
        return None;
    }
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        return i128::from_str_radix(hex, 16).ok();
    }
    if let Some(oct) = s.strip_prefix("0o").or_else(|| s.strip_prefix("0O")) {
        return i128::from_str_radix(oct, 8).ok();
    }
    if let Some(bin) = s.strip_prefix("0b").or_else(|| s.strip_prefix("0B")) {
        return i128::from_str_radix(bin, 2).ok();
    }
    s.parse::<i128>().ok()
}

fn push_tok(out: &mut String, t: &Tok) {
    let word = |c: char| c.is_alphanumeric() || c == '_';
    if let (Some(last), Some(first)) = (out.chars().last(), t.text.chars().next()) {
        if word(last) && word(first) {
            out.push(' ');
        }
    }
    out.push_str(&t.text);
}

/// Reduce a pattern's tokens to the bindings it introduces.
///
/// Recognized precisely: a bare lowercase identifier (`whole` binding)
/// and `Some(x)` / `Ok(x)` wrappers (each adds one `peel`). Every other
/// lowercase identifier that is not a field label or keyword is recorded
/// as a type-unknown binding so it *shadows* any outer variable of the
/// same name instead of mis-resolving to it.
pub fn extract_bindings(toks: &[Tok]) -> Vec<Binding> {
    let mut i = 0usize;
    let peel = 0u8;
    // Strip `& mut ref` prefixes and unwrap Some(..)/Ok(..) layers.
    loop {
        match toks.get(i) {
            Some(t) if t.is_punct("&") || t.is_ident("mut") || t.is_ident("ref") => i += 1,
            Some(t)
                if (t.is_ident("Some") || t.is_ident("Ok"))
                    && toks.get(i + 1).map(|t| t.is_punct("(")).unwrap_or(false)
                    && toks.last().map(|t| t.is_punct(")")).unwrap_or(false) =>
            {
                // Recurse into the wrapper body.
                let inner = &toks[i + 2..toks.len() - 1];
                let mut bs = extract_bindings(inner);
                for b in &mut bs {
                    if b.whole {
                        b.peel = b.peel.saturating_add(peel + 1);
                    }
                }
                return bs;
            }
            _ => break,
        }
    }
    let rest = &toks[i.min(toks.len())..];
    // Single identifier → whole binding.
    if rest.len() == 1 && rest[0].kind == TokKind::Ident {
        let name = &rest[0].text;
        if is_binding_name(name) {
            return vec![Binding {
                name: name.clone(),
                peel,
                whole: true,
            }];
        }
        return Vec::new();
    }
    // Composite pattern: harvest identifiers as type-unknown bindings.
    let mut out = Vec::new();
    let mut j = 0usize;
    while j < rest.len() {
        let t = &rest[j];
        if t.kind == TokKind::Ident && is_binding_name(&t.text) {
            let prev_sep = j >= 2 && rest[j - 1].is_punct(":") && rest[j - 2].is_punct(":");
            let next_sep = rest.get(j + 1).map(|t| t.is_punct(":")).unwrap_or(false);
            // Skip path segments (`a::b`) and `field:` labels: any
            // adjacent colon disqualifies the ident as a binding.
            if !prev_sep && !next_sep {
                out.push(Binding {
                    name: t.text.clone(),
                    peel: 0,
                    whole: false,
                });
            }
        }
        j += 1;
    }
    out
}

fn is_binding_name(name: &str) -> bool {
    if name == "_" || name == "mut" || name == "ref" {
        return false;
    }
    match name.chars().next() {
        Some(c) => c.is_lowercase() || (c == '_' && name.len() > 1),
        None => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Expr;
    use crate::lexer::lex;

    fn parse(src: &str) -> ParsedFile {
        parse_file(&lex(src))
    }

    fn only_fn(src: &str) -> PFn {
        let f = parse(src);
        assert_eq!(f.fns.len(), 1, "expected one fn in {src}");
        f.fns.into_iter().next().unwrap()
    }

    #[test]
    fn fn_signature_and_params() {
        let f = only_fn("pub fn run(cfg: &mut MachineConfig, n: u32) -> SimStats { body() }");
        assert_eq!(f.name, "run");
        assert_eq!(f.params.len(), 2);
        assert_eq!(f.params[0].name, "cfg");
        assert_eq!(f.params[0].ty, "&mut MachineConfig");
        assert_eq!(f.params[1].ty, "u32");
        assert_eq!(f.ret, "SimStats");
    }

    #[test]
    fn impl_methods_get_self_ty() {
        let p = parse("impl<'cfg> Simulator<'cfg> { fn feed(&mut self, op: TraceOp) {} }");
        assert_eq!(p.fns[0].self_ty.as_deref(), Some("Simulator"));
        assert_eq!(p.fns[0].params[0].name, "self");
    }

    #[test]
    fn trait_impl_resolves_to_the_implementing_type() {
        let p = parse("impl Index<StallKind> for StallBreakdown { fn index(&self, k: StallKind) -> &u64 { &self.0 } }");
        assert_eq!(p.fns[0].self_ty.as_deref(), Some("StallBreakdown"));
    }

    #[test]
    fn cfg_test_modules_are_marked() {
        let p = parse("#[cfg(test)] mod tests { fn helper() {} #[test] fn t() {} } fn live() {}");
        assert!(p.fns[0].in_test);
        assert!(p.fns[1].in_test);
        assert!(!p.fns[2].in_test);
    }

    #[test]
    fn method_calls_and_chains_parse() {
        let f = only_fn("fn f(&mut self) { self.obs.as_deref_mut().unwrap().record(1); }");
        let Stmt::Expr(Expr::MethodCall { name, recv, .. }) = &f.body[0] else {
            panic!("want method call, got {:?}", f.body[0]);
        };
        assert_eq!(name, "record");
        let Expr::MethodCall { name: n2, .. } = recv.as_ref() else {
            panic!("want nested method call");
        };
        assert_eq!(n2, "unwrap");
    }

    #[test]
    fn if_let_else_and_bindings() {
        let f = only_fn("fn f(&mut self) { let Some(o) = self.obs.as_deref_mut() else { return; }; o.record(); }");
        let Stmt::Let(l) = &f.body[0] else { panic!() };
        assert_eq!(l.bindings.len(), 1);
        assert_eq!(l.bindings[0].name, "o");
        assert_eq!(l.bindings[0].peel, 1);
        assert!(l.bindings[0].whole);
        assert!(l.else_block.is_some());
    }

    #[test]
    fn match_arms_with_guards() {
        let f = only_fn(
            "fn f(k: OpKind) -> u32 { match k { kind if kind.is_fpu() => 1, OpKind::Load { ea, width } => ea, _ => 0 } }",
        );
        let Stmt::Expr(Expr::Match { arms, .. }) = &f.body[0] else {
            panic!()
        };
        assert_eq!(arms.len(), 3);
        assert!(arms[0].guard.is_some());
        let names: Vec<_> = arms[1].bindings.iter().map(|b| b.name.as_str()).collect();
        assert_eq!(names, ["ea", "width"]);
        assert!(!arms[1].bindings[0].whole);
    }

    #[test]
    fn closures_capture_param_names() {
        let f = only_fn("fn f() { sweep(\"t\", |cfg, v| { cfg.fpu.instr_queue = v; }); }");
        let Stmt::Expr(Expr::Call { args, .. }) = &f.body[0] else {
            panic!()
        };
        let Expr::Closure { params, .. } = &args[1] else {
            panic!("want closure, got {:?}", args[1])
        };
        assert_eq!(params, &["cfg", "v"]);
    }

    #[test]
    fn casts_chain_and_stop_at_operators() {
        let f = only_fn("fn f(p: &u8) -> usize { p as *const u8 as usize + 1 }");
        let Stmt::Expr(Expr::Binary { lhs, .. }) = &f.body[0] else {
            panic!("want binary, got {:?}", f.body[0])
        };
        let Expr::Cast { ty, expr, .. } = lhs.as_ref() else {
            panic!()
        };
        assert_eq!(ty, "usize");
        let Expr::Cast { ty: t2, .. } = expr.as_ref() else {
            panic!()
        };
        assert_eq!(t2, "*const u8");
    }

    #[test]
    fn compound_assign_and_index() {
        let f = only_fn("fn f(&mut self, c: StallCause) { self.stats.stalls[c.kind()] += 1; }");
        let Stmt::Expr(Expr::Assign { op, lhs, .. }) = &f.body[0] else {
            panic!("want assign, got {:?}", f.body[0])
        };
        assert_eq!(*op, Some(BinOp::Add));
        assert!(matches!(lhs.as_ref(), Expr::Index { .. }));
    }

    #[test]
    fn iterator_pipeline_parses_methods() {
        let f = only_fn(
            "fn f(&self) -> Option<u64> { [self.a(), self.b()].into_iter().flatten().filter(|c| *c > self.now).min() }",
        );
        let Stmt::Expr(Expr::MethodCall { name, .. }) = &f.body[0] else {
            panic!()
        };
        assert_eq!(name, "min");
    }

    #[test]
    fn struct_literals_and_ranges() {
        let f = only_fn("fn f(n: usize) -> S { for i in 0..n { go(i); } S { a: 1, b: n } }");
        assert!(matches!(&f.body[0], Stmt::Expr(Expr::For { .. })));
        let Stmt::Expr(Expr::StructLit { path, fields, .. }) = &f.body[1] else {
            panic!("want struct lit, got {:?}", f.body[1])
        };
        assert_eq!(path, &["S"]);
        assert_eq!(fields.len(), 2);
    }

    #[test]
    fn no_struct_context_in_headers() {
        let f = only_fn("fn f(s: S) -> u32 { if s.ready { 1 } else { 0 } }");
        let Stmt::Expr(Expr::If { cond, .. }) = &f.body[0] else {
            panic!()
        };
        assert!(matches!(cond.as_ref(), Expr::Field { .. }));
    }

    #[test]
    fn macros_keep_parsed_args() {
        let f = only_fn("fn f(x: u64) { assert_eq!(x.checked(), compute(x)); }");
        let Stmt::Expr(Expr::Macro { name, args, .. }) = &f.body[0] else {
            panic!()
        };
        assert_eq!(name, "assert_eq");
        assert_eq!(args.len(), 2);
    }

    #[test]
    fn fat_arrow_is_not_assignment() {
        let f = only_fn("fn f(x: u32) -> u32 { match x { n if n > 1 => n, _ => 0 } }");
        let Stmt::Expr(Expr::Match { arms, .. }) = &f.body[0] else {
            panic!("got {:?}", f.body[0])
        };
        assert_eq!(arms.len(), 2);
    }

    #[test]
    fn turbofish_and_generic_calls() {
        let f = only_fn("fn f(v: &[u8]) -> Vec<u8> { v.iter().copied().collect::<Vec<u8>>() }");
        let Stmt::Expr(Expr::MethodCall { name, .. }) = &f.body[0] else {
            panic!()
        };
        assert_eq!(name, "collect");
    }

    #[test]
    fn nested_fns_are_items() {
        let p = parse("fn outer() { fn inner() -> u64 { 3 } inner(); }");
        let names: Vec<_> = p.fns.iter().map(|f| f.name.as_str()).collect();
        assert!(names.contains(&"outer") && names.contains(&"inner"));
    }

    #[test]
    fn tolerates_unknown_syntax_without_stalling() {
        // Garbage tokens must not hang or drop the following fn.
        let p = parse("static X: &[u8] = &[1]; fn ok() { weird @ ; } fn also_ok() {}");
        let names: Vec<_> = p.fns.iter().map(|f| f.name.as_str()).collect();
        assert!(names.contains(&"ok") && names.contains(&"also_ok"));
    }
}
