//! Per-file analysis facts: the serializable IR between the parser and
//! the cross-file graph/rule phases.
//!
//! Facts are extracted from one file's AST *without* any cross-file
//! information, which makes them safe to cache by content hash (see
//! [`cache`](crate::cache)). Receiver types are recorded as *chain
//! descriptors* — `self.f:obs.m:as_deref_mut.some` — that the graph
//! phase resolves against the workspace symbol index.
//!
//! Chain grammar (space-free, `.`-separated):
//! - start: `self` | `t:<Type>` | `fn:<name>` | `?`
//! - segments: `f:<field>` | `m:<method>` | `idx` | `elem` | `some`
//!
//! `some` unwraps one `Option`/`Result`/smart-pointer layer; `elem`
//! takes a container's element type; `idx` is `elem` introduced by `[]`.
//! Spaces inside type strings are escaped as `~` for the line-based
//! cache format.

use crate::ast::{Binding, Block, Expr, LetStmt, PFn, Stmt};
use crate::lexer::FieldDef;

/// Allocation-prone method names (mirrors the v1 rule set).
pub const ALLOC_METHODS: &[&str] = &[
    "clone",
    "to_vec",
    "to_owned",
    "to_string",
    "collect",
    "sort",
    "sort_by",
    "sort_by_key",
];
pub const ALLOC_MACROS: &[&str] = &["format", "vec"];
pub const ALLOC_TYPES: &[&str] = &["HashMap", "HashSet", "BTreeMap", "BTreeSet"];
pub const ALLOC_PATH_HEADS: &[&str] = &["Box", "Vec", "VecDeque", "String"];
pub const ALLOC_PATH_TAILS: &[&str] = &["new", "with_capacity", "from"];
pub const PANIC_METHODS: &[&str] = &["unwrap", "expect"];
pub const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];
pub const NARROW_TARGETS: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32", "usize"];

/// Container iteration methods that seed an L007 candidate.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "values",
    "values_mut",
    "drain",
    "retain",
];

/// Methods that only read their receiver: calling one on `self.field`
/// does not count as a write for the checkpoint-drift analysis (L014).
const READONLY_RECV_METHODS: &[&str] = &[
    "len",
    "is_empty",
    "capacity",
    "iter",
    "get",
    "contains",
    "contains_key",
    "clone",
    "as_ref",
    "as_deref",
    "as_slice",
    "first",
    "last",
    "peek",
    "front",
    "back",
    "is_some",
    "is_none",
    "binary_search",
    "to_vec",
    "starts_with",
    "ends_with",
];

/// Atomic operations whose `Ordering` argument L012 inspects. The
/// read-modify-write ops are recorded but never flagged on their own:
/// a `Relaxed` `fetch_add` counter is the idiomatic work-stealing shape.
const ATOMIC_OPS: &[&str] = &[
    "load",
    "store",
    "swap",
    "fetch_add",
    "fetch_sub",
    "fetch_or",
    "fetch_and",
    "fetch_xor",
    "compare_exchange",
    "compare_exchange_weak",
];

/// Free-function names that imply filesystem traffic (L013).
const BLOCKING_FREE_FNS: &[&str] = &[
    "read_to_string",
    "read_dir",
    "create_dir_all",
    "remove_file",
    "canonicalize",
];

/// Macros that write to stdio, a shared lock (L013).
const BLOCKING_MACROS: &[&str] = &["println", "eprintln", "print", "eprint", "dbg"];

/// A call site recorded for graph construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CallFact {
    /// `name(...)` — a bare path call.
    Free { name: String, line: u32 },
    /// `Type::name(...)`.
    Qualified { ty: String, name: String, line: u32 },
    /// `recv.name(...)` with the receiver's chain descriptor.
    Method {
        chain: String,
        name: String,
        line: u32,
    },
}

impl CallFact {
    pub fn line(&self) -> u32 {
        match self {
            CallFact::Free { line, .. }
            | CallFact::Qualified { line, .. }
            | CallFact::Method { line, .. } => *line,
        }
    }

    pub fn name(&self) -> &str {
        match self {
            CallFact::Free { name, .. }
            | CallFact::Qualified { name, .. }
            | CallFact::Method { name, .. } => name,
        }
    }
}

/// A rule-relevant event observed in a function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// L001 candidate: allocating method/macro/type/constructor.
    Alloc { what: String, line: u32 },
    /// L002 candidate: `unwrap`/`expect`/panicking macro.
    Panic { what: String, line: u32 },
    /// L002 candidate + potential `Index` impl edge: `base[...]`.
    IndexOp { chain: String, line: u32 },
    /// L007: wall-clock or address-sensitive construct.
    Nondet { what: String, line: u32 },
    /// L007 candidate: container iteration; fires only if `chain`
    /// resolves to a Hash* container.
    HashIter { chain: String, line: u32 },
    /// L008: `+`/`-` mixing a cycle-unit operand with a count-unit one.
    UnitMix { cyc: String, cnt: String, line: u32 },
    /// L006 candidate: `as` cast.
    Cast { ty: String, line: u32 },
    /// L010 candidate: unchecked `+`/`-`/`*` on a cycle/count-unit
    /// operand the range analysis could not prove safe.
    Arith { what: String, line: u32 },
    /// L011/L013: a `.lock()` acquisition of the named lock.
    Lock { label: String, line: u32 },
    /// L011: `acquired` was locked while `held`'s guard was live.
    LockEdge {
        held: String,
        acquired: String,
        line: u32,
    },
    /// L011: a call made while `held`'s guard was live; the graph phase
    /// resolves the call at this line and imports the callee's
    /// transitive acquisitions as lock-order edges.
    LockedCall { held: String, line: u32 },
    /// L012: an atomic operation with its `Ordering` argument.
    Atomic {
        label: String,
        op: String,
        ordering: String,
        in_spawn: bool,
        line: u32,
    },
    /// L013 candidate: a call that can block (file I/O, `Mutex::lock`,
    /// stdio macros).
    Blocking { what: String, line: u32 },
}

impl Event {
    pub fn line(&self) -> u32 {
        match self {
            Event::Alloc { line, .. }
            | Event::Panic { line, .. }
            | Event::IndexOp { line, .. }
            | Event::Nondet { line, .. }
            | Event::HashIter { line, .. }
            | Event::UnitMix { line, .. }
            | Event::Cast { line, .. }
            | Event::Arith { line, .. }
            | Event::Lock { line, .. }
            | Event::LockEdge { line, .. }
            | Event::LockedCall { line, .. }
            | Event::Atomic { line, .. }
            | Event::Blocking { line, .. } => *line,
        }
    }
}

/// A field access with the receiver's chain (L004 knob coverage, L014
/// checkpoint drift).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Access {
    pub chain: String,
    pub field: String,
    pub line: u32,
    /// True when the access writes: an assignment target (including
    /// bases of assigned sub-fields/elements), an `&mut` borrow, or the
    /// receiver of a non-read-only method.
    pub write: bool,
}

/// Facts for one function.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FnFacts {
    pub name: String,
    /// Implementing type for methods (trait impls resolve to the type).
    pub self_ty: String,
    pub decl_line: u32,
    pub end_line: u32,
    pub in_test: bool,
    /// Normalized return type ("" for unit).
    pub ret: String,
    /// Parameter types in declaration order ("" for `self`), so rules
    /// can detect participation in a protocol by signature (L014).
    pub params: Vec<String>,
    pub calls: Vec<CallFact>,
    pub events: Vec<Event>,
    pub accesses: Vec<Access>,
}

impl FnFacts {
    /// `Type::name` or bare `name` for free functions.
    pub fn qual_name(&self) -> String {
        if self.self_ty.is_empty() {
            self.name.clone()
        } else {
            format!("{}::{}", self.self_ty, self.name)
        }
    }
}

/// Facts for one file. Pure function of the file's content.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FileFacts {
    pub fns: Vec<FnFacts>,
    /// `(name, decl line, fields)` for every struct in the file.
    pub structs: Vec<(String, u32, Vec<FieldDef>)>,
    /// `const NAME: _ = <numeric literal>` triples (L005).
    pub consts: Vec<(String, String, u32)>,
    /// Field names read (not assignment targets) anywhere in the file.
    pub field_reads: Vec<String>,
    /// Wire-format key usage from the raw-source scan (L016):
    /// `(is_write, key, line)` — see [`crate::lexer::wire_keys`].
    pub wire_keys: Vec<(bool, String, u32)>,
}

/// Extract facts from a parsed file.
pub fn extract(
    parsed: &[PFn],
    structs: Vec<(String, u32, Vec<FieldDef>)>,
    consts: Vec<(String, String, u32)>,
) -> FileFacts {
    let mut file = FileFacts {
        structs,
        consts,
        ..FileFacts::default()
    };
    let mut reads: Vec<String> = Vec::new();
    for f in parsed {
        let mut ex = Extractor {
            file_fns: parsed,
            env: Vec::new(),
            locks: Vec::new(),
            spawn_depth: 0,
            out: FnFacts {
                name: f.name.clone(),
                self_ty: f.self_ty.clone().unwrap_or_default(),
                decl_line: f.decl_line,
                end_line: f.end_line,
                in_test: f.in_test,
                ret: f.ret.clone(),
                params: f.params.iter().map(|p| p.ty.clone()).collect(),
                ..FnFacts::default()
            },
            reads: &mut reads,
        };
        // Parameters seed the type environment.
        for p in &f.params {
            if !p.name.is_empty() && p.name != "self" && !p.ty.is_empty() {
                ex.env.push((p.name.clone(), format!("t:{}", esc(&p.ty))));
            }
        }
        ex.visit_block(&f.body);
        // Note: `Event::Arith` is *not* produced here. L010's interval
        // analysis consumes callee return summaries, so it runs in the
        // interprocedural deep phase (`summary.rs`), which merges its
        // events into the in-memory facts after the fixpoint.
        file.fns.push(ex.out);
    }
    reads.sort();
    reads.dedup();
    file.field_reads = reads;
    file
}

/// Escape spaces for the chain/cache format.
pub fn esc(s: &str) -> String {
    s.replace(' ', "~")
}

/// Undo [`esc`].
pub fn unesc(s: &str) -> String {
    s.replace('~', " ")
}

struct Extractor<'a> {
    file_fns: &'a [PFn],
    /// Lexically-scoped `name -> chain` bindings.
    env: Vec<(String, String)>,
    /// Lock labels whose guards are live in the current scope: a
    /// `let`-bound `.lock()` holds until its block ends (explicit
    /// `drop(guard)` is not modelled — a documented imprecision).
    locks: Vec<String>,
    /// > 0 while visiting the body of a closure passed to `spawn`.
    spawn_depth: u32,
    out: FnFacts,
    reads: &'a mut Vec<String>,
}

impl<'a> Extractor<'a> {
    fn lookup(&self, name: &str) -> Option<&str> {
        self.env
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .map(|(_, c)| c.as_str())
    }

    fn visit_block(&mut self, b: &Block) {
        let mark = self.env.len();
        let lock_mark = self.locks.len();
        for s in b {
            self.visit_stmt(s);
        }
        self.env.truncate(mark);
        self.locks.truncate(lock_mark);
    }

    fn visit_stmt(&mut self, s: &Stmt) {
        match s {
            Stmt::Let(l) => self.visit_let(l),
            Stmt::Expr(e) => self.visit_expr(e, false),
        }
    }

    fn visit_let(&mut self, l: &LetStmt) {
        if let Some(init) = &l.init {
            self.visit_expr(init, false);
            // A let-bound guard keeps its lock held until block end.
            if let Some(label) = self.find_lock_label(init) {
                self.locks.push(label);
            }
        }
        if let Some(else_b) = &l.else_block {
            self.visit_block(else_b);
        }
        // Type annotations mentioning Hash*/BTree* containers count as
        // allocation-type usage, like the v1 token scan did.
        if let Some(ty) = &l.ty {
            if let Some(t) = ALLOC_TYPES.iter().find(|t| mentions_type(ty, t)) {
                self.out.events.push(Event::Alloc {
                    what: (*t).to_string(),
                    line: l.line,
                });
            }
        }
        let base_chain = match (&l.ty, &l.init) {
            (Some(ty), _) if !ty.is_empty() => format!("t:{}", esc(ty)),
            (_, Some(init)) => self.chain_of(init),
            _ => "?".to_string(),
        };
        self.bind(&l.bindings, &base_chain);
    }

    fn bind(&mut self, bindings: &[Binding], scrut_chain: &str) {
        for b in bindings {
            let chain = if b.whole && scrut_chain != "?" {
                let mut c = scrut_chain.to_string();
                for _ in 0..b.peel {
                    c.push_str(".some");
                }
                c
            } else {
                "?".to_string()
            };
            self.env.push((b.name.clone(), chain));
        }
    }

    fn visit_expr(&mut self, e: &Expr, assign_target: bool) {
        match e {
            Expr::Lit(_) | Expr::Num { .. } | Expr::SelfVal(_) | Expr::Opaque(_) => {}
            Expr::Path { segs, line } => {
                if let Some(t) = segs.iter().find(|s| ALLOC_TYPES.contains(&s.as_str())) {
                    self.out.events.push(Event::Alloc {
                        what: t.clone(),
                        line: *line,
                    });
                }
                if segs
                    .iter()
                    .any(|s| s == "DefaultHasher" || s == "RandomState")
                {
                    self.out.events.push(Event::Nondet {
                        what: format!("`{}` (randomized hasher state)", segs.join("::")),
                        line: *line,
                    });
                }
            }
            Expr::Field { base, name, line } => {
                // Assignment context propagates into the base: writing
                // `self.a.b` writes (into) field `a` as well.
                self.visit_expr(base, assign_target);
                self.out.accesses.push(Access {
                    chain: self.chain_of(base),
                    field: name.clone(),
                    line: *line,
                    write: assign_target,
                });
                if !assign_target {
                    self.reads.push(name.clone());
                }
            }
            Expr::Call { callee, args, line } => {
                self.visit_expr(callee, false);
                self.record_call(callee, *line);
                let spawning = callee_name(callee) == Some("spawn");
                if spawning {
                    self.spawn_depth += 1;
                }
                self.visit_args(callee_name(callee), args);
                if spawning {
                    self.spawn_depth -= 1;
                }
                let _ = line;
            }
            Expr::MethodCall {
                recv,
                name,
                args,
                line,
            } => {
                self.visit_expr(recv, false);
                let chain = self.chain_of(recv);
                if ALLOC_METHODS.contains(&name.as_str()) {
                    self.out.events.push(Event::Alloc {
                        what: format!(".{name}()"),
                        line: *line,
                    });
                }
                if PANIC_METHODS.contains(&name.as_str()) {
                    self.out.events.push(Event::Panic {
                        what: format!(".{name}()"),
                        line: *line,
                    });
                }
                if ITER_METHODS.contains(&name.as_str()) {
                    self.out.events.push(Event::HashIter {
                        chain: chain.clone(),
                        line: *line,
                    });
                }
                self.out.calls.push(CallFact::Method {
                    chain,
                    name: name.clone(),
                    line: *line,
                });
                // A non-read-only method on a `self` field is a write
                // for the checkpoint-drift analysis (`self.iq.clear()`).
                if !READONLY_RECV_METHODS.contains(&name.as_str()) {
                    if let Expr::Field {
                        base, name: field, ..
                    } = recv.as_ref()
                    {
                        self.out.accesses.push(Access {
                            chain: self.chain_of(base),
                            field: field.clone(),
                            line: *line,
                            write: true,
                        });
                    }
                }
                if name == "lock" {
                    let label = self.lock_label(recv);
                    for held in self.locks.clone() {
                        self.out.events.push(Event::LockEdge {
                            held,
                            acquired: label.clone(),
                            line: *line,
                        });
                    }
                    self.out.events.push(Event::Lock { label, line: *line });
                    self.out.events.push(Event::Blocking {
                        what: "Mutex::lock".to_string(),
                        line: *line,
                    });
                }
                if ATOMIC_OPS.contains(&name.as_str()) {
                    if let Some(ordering) = args.iter().find_map(ordering_of) {
                        self.out.events.push(Event::Atomic {
                            label: self.lock_label(recv),
                            op: name.clone(),
                            ordering,
                            in_spawn: self.spawn_depth > 0,
                            line: *line,
                        });
                    }
                }
                for held in self.locks.clone() {
                    self.out
                        .events
                        .push(Event::LockedCall { held, line: *line });
                }
                let spawning = name == "spawn";
                if spawning {
                    self.spawn_depth += 1;
                }
                self.visit_args(Some(name.as_str()), args);
                if spawning {
                    self.spawn_depth -= 1;
                }
            }
            Expr::Index { base, index, line } => {
                self.visit_expr(base, assign_target);
                self.visit_expr(index, false);
                self.out.events.push(Event::IndexOp {
                    chain: self.chain_of(base),
                    line: *line,
                });
            }
            Expr::Unary(inner) => self.visit_expr(inner, assign_target),
            Expr::MutBorrow(inner) => self.visit_expr(inner, true),
            Expr::Binary { op, lhs, rhs, line } => {
                self.visit_expr(lhs, false);
                self.visit_expr(rhs, false);
                if matches!(op, crate::ast::BinOp::Add | crate::ast::BinOp::Sub) {
                    self.check_unit_mix(lhs, rhs, *line);
                }
            }
            Expr::Assign { op, lhs, rhs, line } => {
                self.visit_expr(lhs, true);
                self.visit_expr(rhs, false);
                if matches!(
                    op,
                    Some(crate::ast::BinOp::Add) | Some(crate::ast::BinOp::Sub)
                ) {
                    self.check_unit_mix(lhs, rhs, *line);
                }
            }
            Expr::Cast { expr, ty, line } => {
                self.visit_expr(expr, false);
                self.out.events.push(Event::Cast {
                    ty: ty.clone(),
                    line: *line,
                });
                // `&x as *const T as usize`: an address observed as an
                // integer — hash/order on it is nondeterministic per run.
                if ty == "usize" {
                    if let Expr::Cast { ty: inner_ty, .. } = expr.as_ref() {
                        if inner_ty.starts_with('*') {
                            self.out.events.push(Event::Nondet {
                                what: "pointer address observed as usize".to_string(),
                                line: *line,
                            });
                        }
                    }
                }
            }
            Expr::Macro { name, args, line } => {
                if ALLOC_MACROS.contains(&name.as_str()) {
                    self.out.events.push(Event::Alloc {
                        what: format!("{name}!"),
                        line: *line,
                    });
                }
                if BLOCKING_MACROS.contains(&name.as_str()) {
                    self.out.events.push(Event::Blocking {
                        what: format!("{name}! (stdio lock)"),
                        line: *line,
                    });
                }
                if PANIC_MACROS.contains(&name.as_str()) {
                    self.out.events.push(Event::Panic {
                        what: format!("{name}!"),
                        line: *line,
                    });
                }
                // debug_assert* compiles out of release builds: its args
                // are still visited (calls create edges) but the macro
                // itself is not a panic site.
                for a in args {
                    self.visit_expr(a, false);
                }
            }
            Expr::Closure { params, body, .. } => {
                // Untyped closure params shadow outer bindings; callers
                // that know the callee's `Fn(..)` signature re-visit with
                // types via `visit_args`.
                let mark = self.env.len();
                for p in params {
                    self.env.push((p.clone(), "?".to_string()));
                }
                self.visit_expr(body, false);
                self.env.truncate(mark);
            }
            Expr::StructLit {
                path,
                fields,
                rest,
                line,
            } => {
                if let Some(head) = path.last() {
                    if ALLOC_TYPES.contains(&head.as_str()) {
                        self.out.events.push(Event::Alloc {
                            what: head.clone(),
                            line: *line,
                        });
                    }
                    for (fname, v) in fields {
                        self.visit_expr(v, false);
                        self.out.accesses.push(Access {
                            chain: format!("t:{}", esc(head)),
                            field: fname.clone(),
                            line: *line,
                            // Construction initializes the field.
                            write: true,
                        });
                    }
                }
                if let Some(r) = rest {
                    self.visit_expr(r, false);
                }
            }
            Expr::ArrayLit { elems, .. } | Expr::Tuple { elems, .. } => {
                for e in elems {
                    self.visit_expr(e, false);
                }
            }
            Expr::Block(b) => self.visit_block(b),
            Expr::If {
                bindings,
                cond,
                then,
                else_,
            } => {
                self.visit_expr(cond, false);
                let mark = self.env.len();
                let scrut = self.chain_of(cond);
                self.bind(bindings, &scrut);
                self.visit_block(then);
                self.env.truncate(mark);
                if let Some(e) = else_ {
                    self.visit_expr(e, false);
                }
            }
            Expr::Match { scrutinee, arms } => {
                self.visit_expr(scrutinee, false);
                let scrut = self.chain_of(scrutinee);
                for arm in arms {
                    let mark = self.env.len();
                    self.bind(&arm.bindings, &scrut);
                    if let Some(g) = &arm.guard {
                        self.visit_expr(g, false);
                    }
                    self.visit_expr(&arm.body, false);
                    self.env.truncate(mark);
                }
            }
            Expr::While {
                bindings,
                cond,
                body,
            } => {
                let mark = self.env.len();
                if let Some(c) = cond {
                    self.visit_expr(c, false);
                    let scrut = self.chain_of(c);
                    self.bind(bindings, &scrut);
                }
                self.visit_block(body);
                self.env.truncate(mark);
            }
            Expr::For {
                bindings,
                iter,
                body,
            } => {
                self.visit_expr(iter, false);
                let iter_chain = self.chain_of(iter);
                // `for x in container` iterates it even without `.iter()`.
                if iter_chain != "?" && !iter_chain.ends_with(".elem") {
                    self.out.events.push(Event::HashIter {
                        chain: iter_chain.clone(),
                        line: iter.line(),
                    });
                }
                let mark = self.env.len();
                let elem = if iter_chain == "?" {
                    "?".to_string()
                } else {
                    format!("{iter_chain}.elem")
                };
                self.bind(bindings, &elem);
                self.visit_block(body);
                self.env.truncate(mark);
            }
            Expr::Return(v) => {
                if let Some(v) = v {
                    self.visit_expr(v, false);
                }
            }
            Expr::Try(inner) => self.visit_expr(inner, false),
            Expr::Range { lo, hi } => {
                if let Some(l) = lo {
                    self.visit_expr(l, false);
                }
                if let Some(h) = hi {
                    self.visit_expr(h, false);
                }
            }
        }
    }

    /// Record the call edge for a `Call` node.
    fn record_call(&mut self, callee: &Expr, line: u32) {
        if let Expr::Path { segs, .. } = callee {
            for held in self.locks.clone() {
                self.out.events.push(Event::LockedCall { held, line });
            }
            if let Some(what) = blocking_call(segs) {
                self.out.events.push(Event::Blocking { what, line });
            }
            match segs.as_slice() {
                [single] => {
                    // A local variable holding a closure is not a named
                    // call target.
                    if self.lookup(single).is_none() {
                        self.out.calls.push(CallFact::Free {
                            name: single.clone(),
                            line,
                        });
                    }
                }
                [.., ty, name] if starts_upper(ty) => {
                    if let Some(t) = [ty.as_str()].iter().find(|t| ALLOC_PATH_HEADS.contains(*t)) {
                        if ALLOC_PATH_TAILS.contains(&name.as_str()) {
                            self.out.events.push(Event::Alloc {
                                what: format!("{t}::{name}"),
                                line,
                            });
                        }
                    }
                    if ALLOC_TYPES.contains(&ty.as_str())
                        && ALLOC_PATH_TAILS.contains(&name.as_str())
                    {
                        self.out.events.push(Event::Alloc {
                            what: format!("{ty}::{name}"),
                            line,
                        });
                    }
                    if ty == "Instant" || ty == "SystemTime" {
                        self.out.events.push(Event::Nondet {
                            what: format!("`{ty}::{name}` (wall clock)"),
                            line,
                        });
                    }
                    self.out.calls.push(CallFact::Qualified {
                        ty: ty.clone(),
                        name: name.clone(),
                        line,
                    });
                }
                [.., name] => {
                    self.out.calls.push(CallFact::Free {
                        name: name.clone(),
                        line,
                    });
                }
                [] => {}
            }
        }
    }

    /// Visit call arguments; closures get their parameters typed from the
    /// callee's `Fn(..)` parameter when the callee is defined in this
    /// file (the cross-file case degrades to untyped params).
    fn visit_args(&mut self, callee: Option<&str>, args: &[Expr]) {
        let sigs: Option<Vec<String>> = callee.and_then(|name| {
            self.file_fns
                .iter()
                .find(|f| f.name == name)
                .map(|f| f.params.iter().map(|p| p.ty.clone()).collect())
        });
        for (i, a) in args.iter().enumerate() {
            if let Expr::Closure { params, body, .. } = a {
                let fn_args = sigs
                    .as_ref()
                    .and_then(|s| s.get(i + usize::from(sigs_have_self(&sigs))))
                    .map(|ty| fn_trait_args(ty))
                    .unwrap_or_default();
                let mark = self.env.len();
                for (j, p) in params.iter().enumerate() {
                    let chain = fn_args
                        .get(j)
                        .map(|t| format!("t:{}", esc(t)))
                        .unwrap_or_else(|| "?".to_string());
                    self.env.push((p.clone(), chain));
                }
                self.visit_expr(body, false);
                self.env.truncate(mark);
            } else {
                self.visit_expr(a, false);
            }
        }
    }

    /// L008: flag `+`/`-` with one cycle-unit and one count-unit operand.
    fn check_unit_mix(&mut self, lhs: &Expr, rhs: &Expr, line: u32) {
        let l = classify_unit(lhs);
        let r = classify_unit(rhs);
        match (l, r) {
            (Some((UnitClass::Cycle, cyc)), Some((UnitClass::Count, cnt)))
            | (Some((UnitClass::Count, cnt)), Some((UnitClass::Cycle, cyc))) => {
                self.out.events.push(Event::UnitMix { cyc, cnt, line });
            }
            _ => {}
        }
    }

    /// Search an initializer for a `.lock()` call; its receiver's label
    /// names the guard the enclosing `let` keeps alive.
    fn find_lock_label(&self, e: &Expr) -> Option<String> {
        match e {
            Expr::MethodCall { recv, name, .. } => {
                if name == "lock" {
                    Some(self.lock_label(recv))
                } else {
                    self.find_lock_label(recv)
                }
            }
            Expr::Unary(inner) | Expr::MutBorrow(inner) | Expr::Try(inner) => {
                self.find_lock_label(inner)
            }
            Expr::Block(b) => b.iter().rev().find_map(|s| match s {
                Stmt::Expr(e) => self.find_lock_label(e),
                Stmt::Let(_) => None,
            }),
            _ => None,
        }
    }

    /// A workspace-stable name for a lock or atomic: `Type.field` for
    /// `self` fields, the static's path for globals, and a
    /// function-qualified name for locals (which never alias across
    /// functions anyway).
    fn lock_label(&self, e: &Expr) -> String {
        match e {
            Expr::SelfVal(_) => {
                if self.out.self_ty.is_empty() {
                    "self".to_string()
                } else {
                    self.out.self_ty.clone()
                }
            }
            Expr::Field { base, name, .. } => format!("{}.{}", self.lock_label(base), name),
            Expr::Path { segs, .. } => match segs.as_slice() {
                [single] if !starts_upper(single) => match self.lookup(single) {
                    // A typed param/binding: label by its chain so two
                    // functions locking the same field agree.
                    Some(chain) if chain != "?" => chain_label(chain),
                    _ => format!("{}::{}", self.out.qual_name(), single),
                },
                _ => segs.join("::"),
            },
            Expr::Unary(inner) | Expr::MutBorrow(inner) | Expr::Try(inner) => {
                self.lock_label(inner)
            }
            Expr::Index { base, .. } => format!("{}[]", self.lock_label(base)),
            _ => format!("{}::<anon>", self.out.qual_name()),
        }
    }

    /// Compute the chain descriptor for an expression used as a receiver.
    fn chain_of(&self, e: &Expr) -> String {
        match e {
            Expr::SelfVal(_) => "self".to_string(),
            Expr::Path { segs, .. } => match segs.as_slice() {
                [single] => match self.lookup(single) {
                    Some(c) => c.to_string(),
                    None if starts_upper(single) => format!("t:{}", esc(single)),
                    None => "?".to_string(),
                },
                [.., ty, _last] if starts_upper(ty) => format!("t:{}", esc(ty)),
                [.., last] if starts_upper(last) => format!("t:{}", esc(last)),
                _ => "?".to_string(),
            },
            Expr::Field { base, name, .. } => {
                if name.contains('.') {
                    return "?".to_string(); // `tuple.0.1` — untracked
                }
                seg(self.chain_of(base), &format!("f:{name}"))
            }
            Expr::MethodCall { recv, name, .. } => seg(self.chain_of(recv), &format!("m:{name}")),
            Expr::Call { callee, .. } => match callee.as_ref() {
                Expr::Path { segs, .. } => match segs.as_slice() {
                    [single] => format!("fn:{single}"),
                    [.., ty, name] if starts_upper(ty) => {
                        seg(format!("t:{}", esc(ty)), &format!("m:{name}"))
                    }
                    [.., name] => format!("fn:{name}"),
                    [] => "?".to_string(),
                },
                _ => "?".to_string(),
            },
            Expr::Index { base, .. } => seg(self.chain_of(base), "idx"),
            Expr::Unary(inner) | Expr::MutBorrow(inner) => self.chain_of(inner),
            Expr::Try(inner) => seg(self.chain_of(inner), "some"),
            Expr::Cast { ty, .. } => format!("t:{}", esc(ty)),
            Expr::StructLit { path, .. } => path
                .last()
                .map(|h| format!("t:{}", esc(h)))
                .unwrap_or_else(|| "?".to_string()),
            _ => "?".to_string(),
        }
    }
}

fn seg(base: String, s: &str) -> String {
    if base == "?" {
        base
    } else {
        format!("{base}.{s}")
    }
}

/// Flatten a chain descriptor into a lock label: `t:&~TraceStore.f:cells`
/// becomes `TraceStore.cells`.
fn chain_label(chain: &str) -> String {
    chain
        .split('.')
        .map(|part| {
            let part = part
                .strip_prefix("f:")
                .or_else(|| part.strip_prefix("m:"))
                .or_else(|| part.strip_prefix("t:"))
                .or_else(|| part.strip_prefix("fn:"))
                .unwrap_or(part);
            unesc(part)
                .trim_start_matches(['&', ' '])
                .trim_start_matches("mut ")
                .to_string()
        })
        .collect::<Vec<_>>()
        .join(".")
}

/// The `Ordering` argument of an atomic op, if this expression is one.
fn ordering_of(e: &Expr) -> Option<String> {
    const ORDERINGS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];
    if let Expr::Path { segs, .. } = e {
        let last = segs.last()?;
        if ORDERINGS.contains(&last.as_str())
            && (segs.len() == 1 || segs.iter().any(|s| s == "Ordering"))
        {
            return Some(last.clone());
        }
    }
    None
}

/// A blocking filesystem/stdio call, by path (L013).
fn blocking_call(segs: &[String]) -> Option<String> {
    match segs {
        [.., ty, name]
            if (ty == "File" && (name == "open" || name == "create"))
                || (ty == "OpenOptions" && name == "new") =>
        {
            Some(format!("{ty}::{name} (file I/O)"))
        }
        [.., fs, name] if fs == "fs" => Some(format!("fs::{name} (file I/O)")),
        [.., io, name] if io == "io" && (name == "stdin" || name == "stdout") => {
            Some(format!("io::{name} (stdio)"))
        }
        [.., name] if BLOCKING_FREE_FNS.contains(&name.as_str()) => {
            Some(format!("{name} (file I/O)"))
        }
        _ => None,
    }
}

fn starts_upper(s: &str) -> bool {
    s.chars().next().map(|c| c.is_uppercase()).unwrap_or(false)
}

fn callee_name(callee: &Expr) -> Option<&str> {
    match callee {
        Expr::Path { segs, .. } => segs.last().map(String::as_str),
        _ => None,
    }
}

fn sigs_have_self(sigs: &Option<Vec<String>>) -> bool {
    // A method's first recorded param is `self` with an empty type.
    sigs.as_ref()
        .and_then(|s| s.first())
        .map(|t| t.is_empty())
        .unwrap_or(false)
}

/// True if the type string mentions `name` as a path segment.
fn mentions_type(ty: &str, name: &str) -> bool {
    ty.split(|c: char| !c.is_alphanumeric() && c != '_')
        .any(|seg| seg == name)
}

/// Extract the argument types of a `Fn(...)`/`FnMut(...)`/`FnOnce(...)`
/// bound inside a (normalized) type string.
pub fn fn_trait_args(ty: &str) -> Vec<String> {
    for marker in ["Fn(", "FnMut(", "FnOnce("] {
        if let Some(at) = ty.find(marker) {
            let open = at + marker.len() - 1;
            let bytes = ty.as_bytes();
            let mut depth = 0i32;
            let mut end = open;
            for (i, b) in bytes.iter().enumerate().skip(open) {
                match b {
                    b'(' | b'[' | b'<' => depth += 1,
                    b')' | b']' | b'>' => {
                        depth -= 1;
                        if depth == 0 {
                            end = i;
                            break;
                        }
                    }
                    _ => {}
                }
            }
            let inner = &ty[open + 1..end];
            if inner.trim().is_empty() {
                return Vec::new();
            }
            let mut out = Vec::new();
            let mut depth = 0i32;
            let mut start = 0usize;
            for (i, c) in inner.char_indices() {
                match c {
                    '(' | '[' | '<' => depth += 1,
                    ')' | ']' | '>' => depth -= 1,
                    ',' if depth == 0 => {
                        out.push(inner[start..i].trim().to_string());
                        start = i + 1;
                    }
                    _ => {}
                }
            }
            out.push(inner[start..].trim().to_string());
            return out;
        }
    }
    Vec::new()
}

#[derive(PartialEq)]
pub(crate) enum UnitClass {
    Cycle,
    Count,
}

pub(crate) fn unit_of(name: &str) -> Option<UnitClass> {
    if name == "cycle" || name == "cycles" || name.ends_with("_cycle") || name.ends_with("_cycles")
    {
        return Some(UnitClass::Cycle);
    }
    if name == "count" || name.ends_with("_count") || name.ends_with("_counts") {
        return Some(UnitClass::Count);
    }
    None
}

/// Classify an L008 operand; `None` is neutral. A cast is always neutral:
/// it is the explicit conversion site the rule asks for.
fn classify_unit(e: &Expr) -> Option<(UnitClass, String)> {
    match e {
        Expr::Cast { .. } => None,
        Expr::Unary(inner) | Expr::MutBorrow(inner) | Expr::Try(inner) => classify_unit(inner),
        Expr::Field { name, .. } => unit_of(name).map(|u| (u, format!(".{name}"))),
        Expr::Path { segs, .. } => {
            let last = segs.last()?;
            unit_of(last).map(|u| (u, last.clone()))
        }
        Expr::MethodCall { name, .. } if name == "len" => {
            Some((UnitClass::Count, ".len()".to_string()))
        }
        Expr::MethodCall { name, .. } => unit_of(name).map(|u| (u, format!(".{name}()"))),
        Expr::Call { callee, .. } => {
            let name = callee_name(callee)?;
            unit_of(name).map(|u| (u, format!("{name}()")))
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::{all_structs, lex, numeric_consts};
    use crate::parser::parse_file;

    fn facts(src: &str) -> FileFacts {
        let toks = lex(src);
        let parsed = parse_file(&toks);
        extract(&parsed.fns, all_structs(&toks), numeric_consts(&toks))
    }

    fn fn_facts<'a>(f: &'a FileFacts, name: &str) -> &'a FnFacts {
        f.fns.iter().find(|f| f.name == name).unwrap()
    }

    #[test]
    fn params_seed_typed_chains() {
        let f = facts("fn sweep(cfg: &mut MachineConfig) { cfg.rob_entries = 7; }");
        let acc = &fn_facts(&f, "sweep").accesses;
        assert_eq!(acc.len(), 1);
        assert_eq!(acc[0].chain, "t:&mut~MachineConfig");
        assert_eq!(acc[0].field, "rob_entries");
    }

    #[test]
    fn self_field_method_chains() {
        let f = facts(
            "impl Simulator { fn feed(&mut self) { if let Some(o) = self.obs.as_deref_mut() { o.record(1); } } }",
        );
        let calls = &fn_facts(&f, "feed").calls;
        assert!(calls.iter().any(|c| matches!(
            c,
            CallFact::Method { chain, name, .. }
            if name == "record" && chain == "self.f:obs.m:as_deref_mut.some"
        )));
    }

    #[test]
    fn alloc_and_panic_events() {
        let f = facts(
            "fn hot(v: &[u8]) -> Vec<u8> { let s = format!(\"x\"); let b = Box::new(3); v.to_vec() }",
        );
        let ev = &fn_facts(&f, "hot").events;
        let allocs: Vec<_> = ev
            .iter()
            .filter_map(|e| match e {
                Event::Alloc { what, .. } => Some(what.as_str()),
                _ => None,
            })
            .collect();
        assert!(allocs.contains(&"format!"));
        assert!(allocs.contains(&"Box::new"));
        assert!(allocs.contains(&".to_vec()"));
    }

    #[test]
    fn debug_assert_is_not_a_panic_site_but_args_still_count() {
        let f = facts("fn hot(&self) { debug_assert!(self.check_invariant()); }");
        let ff = fn_facts(&f, "hot");
        assert!(ff.events.iter().all(|e| !matches!(e, Event::Panic { .. })));
        assert!(ff.calls.iter().any(|c| c.name() == "check_invariant"));
    }

    #[test]
    fn unit_mix_detected_and_cast_neutralizes() {
        let f = facts(
            "fn f(&mut self, v: &[u8]) { self.total_cycles += v.len(); self.busy_cycles += v.len() as u64; }",
        );
        let ev = &fn_facts(&f, "f").events;
        let mixes: Vec<_> = ev
            .iter()
            .filter(|e| matches!(e, Event::UnitMix { .. }))
            .collect();
        assert_eq!(mixes.len(), 1, "{ev:?}");
    }

    #[test]
    fn hash_iteration_candidates_carry_chains() {
        let f = facts("struct S { pages: HashMap<u32, u8> } impl S { fn f(&self) { for p in self.pages.values() { go(p); } } }");
        let ev = &fn_facts(&f, "f").events;
        assert!(ev.iter().any(|e| matches!(
            e,
            Event::HashIter { chain, .. } if chain == "self.f:pages"
        )));
    }

    #[test]
    fn ptr_address_cast_is_nondet() {
        let f = facts("fn f(x: &u8) -> usize { x as *const u8 as usize }");
        let ev = &fn_facts(&f, "f").events;
        assert!(ev.iter().any(|e| matches!(e, Event::Nondet { .. })));
    }

    #[test]
    fn closure_params_typed_from_same_file_callee() {
        let f = facts(
            "fn sweep(apply: impl Fn(&mut MachineConfig, u32)) {}\nfn main() { sweep(|cfg, v| { cfg.rob_entries = v; }); }",
        );
        let acc = &fn_facts(&f, "main").accesses;
        assert!(acc
            .iter()
            .any(|a| a.field == "rob_entries" && a.chain.contains("MachineConfig")));
    }

    #[test]
    fn assignment_targets_are_not_reads() {
        let f = facts("fn f(&mut self) { self.dead = 1; self.live += self.other; }");
        assert!(!f.field_reads.contains(&"dead".to_string()));
        // Compound assignment target counts as a write, not a read.
        assert!(!f.field_reads.contains(&"live".to_string()));
        assert!(f.field_reads.contains(&"other".to_string()));
    }

    #[test]
    fn index_events_record_base_chain() {
        let f = facts("impl Sim { fn f(&mut self, k: K) { self.stats.stalls[k] += 1; } }");
        let ev = &fn_facts(&f, "f").events;
        assert!(ev.iter().any(|e| matches!(
            e,
            Event::IndexOp { chain, .. } if chain == "self.f:stats.f:stalls"
        )));
    }

    #[test]
    fn fn_trait_args_split_nested() {
        assert_eq!(
            fn_trait_args("impl Fn(&mut MachineConfig,u32)"),
            vec!["&mut MachineConfig", "u32"]
        );
        assert_eq!(
            fn_trait_args("impl Fn(Option<(u8,u8)>)"),
            vec!["Option<(u8,u8)>"]
        );
        assert!(fn_trait_args("u32").is_empty());
    }
}
