//! The statement/expression tree produced by [`parser`](crate::parser).
//!
//! This is not a general-purpose Rust AST: it models exactly the shapes
//! the rule engine consumes — calls, method calls with receiver chains,
//! indexing, macros, closures, casts, field accesses and binary
//! arithmetic — and collapses everything else into [`Expr::Opaque`].
//! Patterns are reduced to the bindings they introduce (plus how many
//! `Some`/`Ok` layers wrap them), which is all the local type
//! environment needs.

/// A binary operator the rules care about. Everything else (shifts,
/// bit-ops, logical ops) parses but is represented as `Other` so operand
/// walks still recurse. Ordered comparisons keep their direction so the
/// range analysis can refine intervals from dominating guards; `==`/`!=`
/// collapse to `Cmp`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    Lt,
    Le,
    Gt,
    Ge,
    Cmp,
    Other,
}

/// One binding introduced by a pattern.
#[derive(Debug, Clone)]
pub struct Binding {
    pub name: String,
    /// How many `Some(..)` / `Ok(..)` layers wrapped the binding: each
    /// peels one `Option`/`Result` off the scrutinee's type.
    pub peel: u8,
    /// True when the binding covers the whole matched value (so its type
    /// is the scrutinee's, modulo `peel`); false for positional bindings
    /// out of tuples/slices/struct patterns, whose types we do not track.
    pub whole: bool,
}

/// A `let` statement (also used for the headers of `if let`/`while let`).
#[derive(Debug, Clone)]
pub struct LetStmt {
    pub bindings: Vec<Binding>,
    /// Explicit `: Type` annotation, normalized (see `parser::join_type`).
    pub ty: Option<String>,
    pub init: Option<Expr>,
    pub else_block: Option<Block>,
    pub line: u32,
}

#[derive(Debug, Clone)]
pub enum Stmt {
    Let(LetStmt),
    Expr(Expr),
}

pub type Block = Vec<Stmt>;

/// One `match` arm: the bindings its pattern introduces plus its body.
#[derive(Debug, Clone)]
pub struct Arm {
    pub bindings: Vec<Binding>,
    pub guard: Option<Expr>,
    pub body: Expr,
}

#[derive(Debug, Clone)]
pub enum Expr {
    /// Literal (bool, or a stripped string/char, or a numeric literal
    /// whose value did not parse).
    Lit(u32),
    /// An integer literal with its value (underscores and type suffixes
    /// stripped), feeding the range analysis.
    Num {
        val: i128,
        line: u32,
    },
    /// `self` as a value.
    SelfVal(u32),
    /// A (possibly multi-segment) path used as a value: `x`,
    /// `OpKind::IntAlu`, `std::mem::take`.
    Path {
        segs: Vec<String>,
        line: u32,
    },
    /// `base.field` / `base.0`.
    Field {
        base: Box<Expr>,
        name: String,
        line: u32,
    },
    /// `callee(args)` where callee is usually a `Path`.
    Call {
        callee: Box<Expr>,
        args: Vec<Expr>,
        line: u32,
    },
    /// `recv.name(args)`.
    MethodCall {
        recv: Box<Expr>,
        name: String,
        args: Vec<Expr>,
        line: u32,
    },
    /// `base[index]`.
    Index {
        base: Box<Expr>,
        index: Box<Expr>,
        line: u32,
    },
    /// `&e`, `*e`, `-e`, `!e`.
    Unary(Box<Expr>),
    /// `&mut e` — kept distinct from [`Expr::Unary`] because handing out
    /// a mutable borrow of a field counts as a write for the
    /// checkpoint-drift analysis (L014).
    MutBorrow(Box<Expr>),
    Binary {
        op: BinOp,
        lhs: Box<Expr>,
        rhs: Box<Expr>,
        line: u32,
    },
    /// `lhs = rhs` or `lhs op= rhs` (`op` is `None` for plain `=`).
    Assign {
        op: Option<BinOp>,
        lhs: Box<Expr>,
        rhs: Box<Expr>,
        line: u32,
    },
    /// `expr as Type` (type normalized).
    Cast {
        expr: Box<Expr>,
        ty: String,
        line: u32,
    },
    /// `name!(...)`. `args` holds the parsed argument expressions when
    /// the token soup inside parsed cleanly as a comma-separated list;
    /// otherwise the macro is opaque (its tokens were skipped).
    Macro {
        name: String,
        args: Vec<Expr>,
        line: u32,
    },
    /// `|params| body` / `move |params| body`. Parameter names feed the
    /// caller-signature closure-typing heuristic.
    Closure {
        params: Vec<String>,
        body: Box<Expr>,
        line: u32,
    },
    /// `Path { field: expr, .., ..rest }`.
    StructLit {
        path: Vec<String>,
        fields: Vec<(String, Expr)>,
        rest: Option<Box<Expr>>,
        line: u32,
    },
    /// `[a, b, c]` or `[elem; n]`.
    ArrayLit {
        elems: Vec<Expr>,
        line: u32,
    },
    /// `(a, b)`; a 1-tuple is a parenthesized expression.
    Tuple {
        elems: Vec<Expr>,
        line: u32,
    },
    Block(Block),
    If {
        /// Present for `if let PAT = scrutinee`.
        bindings: Vec<Binding>,
        cond: Box<Expr>,
        then: Block,
        else_: Option<Box<Expr>>,
    },
    Match {
        scrutinee: Box<Expr>,
        arms: Vec<Arm>,
    },
    /// `while` / `while let` / `loop`.
    While {
        bindings: Vec<Binding>,
        cond: Option<Box<Expr>>,
        body: Block,
    },
    For {
        bindings: Vec<Binding>,
        iter: Box<Expr>,
        body: Block,
    },
    Return(Option<Box<Expr>>),
    /// `expr?`.
    Try(Box<Expr>),
    /// `a..b` / `a..=b` (operands kept for recursion).
    Range {
        lo: Option<Box<Expr>>,
        hi: Option<Box<Expr>>,
    },
    /// Something the tolerant parser skipped (`break`, `continue`,
    /// unsupported syntax). Never contributes facts.
    Opaque(u32),
}

impl Expr {
    pub fn line(&self) -> u32 {
        match self {
            Expr::Lit(l) | Expr::SelfVal(l) | Expr::Opaque(l) => *l,
            Expr::Num { line, .. } => *line,
            Expr::Path { line, .. }
            | Expr::Field { line, .. }
            | Expr::Call { line, .. }
            | Expr::MethodCall { line, .. }
            | Expr::Index { line, .. }
            | Expr::Binary { line, .. }
            | Expr::Assign { line, .. }
            | Expr::Cast { line, .. }
            | Expr::Macro { line, .. }
            | Expr::Closure { line, .. }
            | Expr::StructLit { line, .. }
            | Expr::ArrayLit { line, .. }
            | Expr::Tuple { line, .. } => *line,
            Expr::Unary(e) | Expr::MutBorrow(e) | Expr::Try(e) => e.line(),
            Expr::Block(b) => b.first().map(stmt_line).unwrap_or(0),
            Expr::If { cond, .. } => cond.line(),
            Expr::Match { scrutinee, .. } => scrutinee.line(),
            Expr::While { body, .. } => body.first().map(stmt_line).unwrap_or(0),
            Expr::For { iter, .. } => iter.line(),
            Expr::Return(e) => e.as_ref().map(|e| e.line()).unwrap_or(0),
            Expr::Range { lo, hi } => lo.as_ref().or(hi.as_ref()).map(|e| e.line()).unwrap_or(0),
        }
    }
}

fn stmt_line(s: &Stmt) -> u32 {
    match s {
        Stmt::Let(l) => l.line,
        Stmt::Expr(e) => e.line(),
    }
}

/// One function parameter with its normalized type.
#[derive(Debug, Clone)]
pub struct Param {
    pub name: String,
    pub ty: String,
}

/// A parsed function item.
#[derive(Debug, Clone)]
pub struct PFn {
    pub name: String,
    /// The `impl`/`trait` Self type for methods, `None` for free fns.
    pub self_ty: Option<String>,
    pub decl_line: u32,
    pub end_line: u32,
    /// Inside a `#[cfg(test)]` module or annotated `#[test]`.
    pub in_test: bool,
    pub params: Vec<Param>,
    /// Normalized return type ("" when the fn returns unit).
    pub ret: String,
    pub body: Block,
}

/// Everything the parser extracts from one file.
#[derive(Debug, Default)]
pub struct ParsedFile {
    pub fns: Vec<PFn>,
}
