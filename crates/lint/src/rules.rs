//! The six lint rules. Each rule walks the pre-lexed token streams in a
//! `Workspace` and emits raw findings; suppression is applied by the caller.

use crate::config::LintConfig;
use crate::lexer::{self, Tok, TokKind};
use crate::{FileData, Finding, Workspace};

/// Methods whose stable-sort / copy / collection semantics allocate.
const ALLOC_METHODS: &[&str] = &[
    "clone",
    "to_vec",
    "to_owned",
    "to_string",
    "collect",
    "sort",
    "sort_by",
    "sort_by_key",
];

/// Macros that allocate.
const ALLOC_MACROS: &[&str] = &["format", "vec"];

/// Heap collection types that have no place in the hot loop.
const ALLOC_TYPES: &[&str] = &["HashMap", "HashSet", "BTreeMap", "BTreeSet"];

/// Constructors that allocate when reached through a path call.
const ALLOC_PATH_HEADS: &[&str] = &["Box", "Vec", "VecDeque", "String"];
const ALLOC_PATH_TAILS: &[&str] = &["new", "with_capacity", "from"];

/// Methods that can panic.
const PANIC_METHODS: &[&str] = &["unwrap", "expect"];

/// Macros that panic.
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// Cast targets L006 treats as narrowing. `u64`/`i64`/floats are excluded:
/// on every supported target they cannot lose integer bits that the codec
/// cares about, while `usize` can (32-bit hosts).
const NARROW_TARGETS: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32", "usize"];

pub fn run_all(ws: &Workspace, cfg: &LintConfig) -> Vec<Finding> {
    let mut out = Vec::new();
    hot_path_rules(ws, cfg, &mut out);
    dead_counters(ws, cfg, &mut out);
    config_coverage(ws, cfg, &mut out);
    trace_format(ws, cfg, &mut out);
    narrowing_casts(ws, cfg, &mut out);
    out
}

fn finding(file: &str, line: u32, rule: &'static str, msg: String) -> Finding {
    Finding {
        file: file.to_string(),
        line,
        rule,
        msg,
    }
}

// ---------------------------------------------------------------- L001/L002

fn hot_path_rules(ws: &Workspace, cfg: &LintConfig, out: &mut Vec<Finding>) {
    for hot in &cfg.hot {
        let Some(fd) = ws.file(&hot.file) else {
            out.push(finding(
                &hot.file,
                0,
                "L001",
                "hot-path file declared in lint.toml was not found in the workspace".to_string(),
            ));
            continue;
        };
        for name in &hot.functions {
            let spans: Vec<_> = fd.fns.iter().filter(|s| s.name == *name).collect();
            if spans.is_empty() {
                out.push(finding(
                    &hot.file,
                    0,
                    "L001",
                    format!(
                        "hot function `{name}` declared in lint.toml does not exist in this \
                         file — update lint.toml"
                    ),
                ));
                continue;
            }
            for span in spans {
                scan_hot_body(fd, &fd.toks[span.body.clone()], name, out);
            }
        }
    }
}

fn scan_hot_body(fd: &FileData, body: &[Tok], fn_name: &str, out: &mut Vec<Finding>) {
    for (k, t) in body.iter().enumerate() {
        match t.kind {
            TokKind::Ident => {
                let next = body.get(k + 1);
                let is_macro = matches!(next, Some(n) if n.is_punct("!"));
                if is_macro && ALLOC_MACROS.contains(&t.text.as_str()) {
                    out.push(finding(
                        &fd.rel,
                        t.line,
                        "L001",
                        format!("`{}!` allocates inside hot function `{fn_name}`", t.text),
                    ));
                }
                if is_macro && PANIC_MACROS.contains(&t.text.as_str()) {
                    out.push(finding(
                        &fd.rel,
                        t.line,
                        "L002",
                        format!("`{}!` can abort inside hot function `{fn_name}`", t.text),
                    ));
                }
                if ALLOC_TYPES.contains(&t.text.as_str()) {
                    out.push(finding(
                        &fd.rel,
                        t.line,
                        "L001",
                        format!(
                            "heap collection `{}` used inside hot function `{fn_name}`",
                            t.text
                        ),
                    ));
                }
                if ALLOC_PATH_HEADS.contains(&t.text.as_str())
                    && matches!(body.get(k + 1), Some(c1) if c1.is_punct(":"))
                    && matches!(body.get(k + 2), Some(c2) if c2.is_punct(":"))
                    && matches!(body.get(k + 3),
                        Some(m) if ALLOC_PATH_TAILS.contains(&m.text.as_str()))
                {
                    out.push(finding(
                        &fd.rel,
                        t.line,
                        "L001",
                        format!(
                            "`{}::{}` allocates inside hot function `{fn_name}`",
                            t.text,
                            body[k + 3].text
                        ),
                    ));
                }
            }
            TokKind::Punct if t.text == "." => {
                if let Some(m) = body.get(k + 1) {
                    if m.kind == TokKind::Ident {
                        if ALLOC_METHODS.contains(&m.text.as_str()) {
                            out.push(finding(
                                &fd.rel,
                                m.line,
                                "L001",
                                format!(
                                    "`.{}()` allocates inside hot function `{fn_name}`",
                                    m.text
                                ),
                            ));
                        }
                        if PANIC_METHODS.contains(&m.text.as_str()) {
                            out.push(finding(
                                &fd.rel,
                                m.line,
                                "L002",
                                format!(
                                    "`.{}()` can panic inside hot function `{fn_name}` — use an \
                                     infallible pattern or a reasoned pragma",
                                    m.text
                                ),
                            ));
                        }
                    }
                }
            }
            TokKind::Punct if t.text == "[" && k > 0 => {
                let prev = &body[k - 1];
                let indexes = match prev.kind {
                    TokKind::Ident => !is_keyword(&prev.text),
                    TokKind::Num => true,
                    TokKind::Punct => prev.text == ")" || prev.text == "]",
                };
                if indexes {
                    out.push(finding(
                        &fd.rel,
                        t.line,
                        "L002",
                        format!(
                            "slice index without `get` inside hot function `{fn_name}` — \
                             indexing panics on out-of-bounds"
                        ),
                    ));
                }
            }
            _ => {}
        }
    }
}

/// Keywords that can directly precede `[` without forming an index
/// expression (e.g. `return [a, b]`, `in [0, 1]`).
fn is_keyword(s: &str) -> bool {
    matches!(
        s,
        "return" | "in" | "as" | "mut" | "ref" | "move" | "else" | "match" | "if" | "break"
    )
}

// -------------------------------------------------------------------- L003

fn dead_counters(ws: &Workspace, cfg: &LintConfig, out: &mut Vec<Finding>) {
    let stats = &cfg.stats;
    if stats.file.is_empty() {
        return;
    }
    let Some(root_fd) = ws.file(&stats.file) else {
        out.push(finding(
            &stats.file,
            0,
            "L003",
            "stats file declared in lint.toml was not found".to_string(),
        ));
        return;
    };
    // Resolve the transitive closure of counter structs: every pub field of
    // the root structs, recursing into struct-typed fields defined anywhere
    // in the workspace.
    let mut worklist: Vec<(String, String)> = stats
        .structs
        .iter()
        .map(|s| (root_fd.rel.clone(), s.clone()))
        .collect();
    let mut visited: Vec<String> = Vec::new();
    while let Some((def_file, struct_name)) = worklist.pop() {
        if visited.contains(&struct_name) {
            continue;
        }
        visited.push(struct_name.clone());
        let Some(fd) = ws.file(&def_file) else {
            continue;
        };
        let Some(fields) = lexer::struct_fields(&fd.toks, &struct_name) else {
            out.push(finding(
                &fd.rel,
                0,
                "L003",
                format!("struct `{struct_name}` declared in lint.toml was not found"),
            ));
            continue;
        };
        for field in fields.iter().filter(|f| f.public) {
            if let Some((sub_file, sub_name)) = resolve_struct(ws, &field.ty) {
                worklist.push((sub_file, sub_name));
            }
            let read = ws.files.values().any(|other| {
                other.rel != fd.rel
                    && other.rel != stats.file
                    && stats.read_scope.iter().any(|p| in_scope(&other.rel, p))
                    && reads_field(&other.toks, &field.name)
            });
            if !read {
                out.push(finding(
                    &fd.rel,
                    field.line,
                    "L003",
                    format!(
                        "dead counter: `{struct_name}.{}` is never read outside its defining \
                         file — surface it in a report or remove it",
                        field.name
                    ),
                ));
            }
        }
    }
}

/// If `ty` names a struct with named fields somewhere in the workspace,
/// return (defining file, struct name).
fn resolve_struct(ws: &Workspace, ty: &str) -> Option<(String, String)> {
    let head: String = ty
        .chars()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect();
    if head.is_empty() || head.chars().next().is_some_and(|c| c.is_lowercase()) {
        return None;
    }
    for fd in ws.files.values() {
        if let Some(fields) = lexer::struct_fields(&fd.toks, &head) {
            if !fields.is_empty() {
                return Some((fd.rel.clone(), head));
            }
        }
    }
    None
}

fn in_scope(rel: &str, prefix: &str) -> bool {
    rel == prefix || rel.starts_with(&format!("{prefix}/"))
}

/// True when `.field` appears as a *read*: any occurrence that is not the
/// direct target of `=` or a compound assignment operator.
fn reads_field(toks: &[Tok], field: &str) -> bool {
    for k in 0..toks.len().saturating_sub(1) {
        if !(toks[k].is_punct(".") && toks[k + 1].is_ident(field)) {
            continue;
        }
        if !is_assignment_target(toks, k + 2) {
            return true;
        }
    }
    false
}

fn is_assignment_target(toks: &[Tok], k: usize) -> bool {
    let t = |i: usize| toks.get(k + i).map(|t| t.text.as_str()).unwrap_or("");
    match t(0) {
        // `=` alone is an assignment; `==` is a comparison (a read).
        "=" => t(1) != "=",
        // `+=`, `-=`, `*=`, `/=`, `%=`, `|=`, `&=`, `^=`.
        "+" | "-" | "*" | "/" | "%" | "|" | "&" | "^" => t(1) == "=",
        // `<<=` / `>>=`; plain `<=` / `>=` are comparisons.
        "<" => t(1) == "<" && t(2) == "=",
        ">" => t(1) == ">" && t(2) == "=",
        _ => false,
    }
}

// -------------------------------------------------------------------- L004

fn config_coverage(ws: &Workspace, cfg: &LintConfig, out: &mut Vec<Finding>) {
    let cov = &cfg.config_coverage;
    if cov.file.is_empty() {
        return;
    }
    let Some(fd) = ws.file(&cov.file) else {
        out.push(finding(
            &cov.file,
            0,
            "L004",
            "config file declared in lint.toml was not found".to_string(),
        ));
        return;
    };
    let Some(fields) = lexer::struct_fields(&fd.toks, &cov.struct_name) else {
        out.push(finding(
            &fd.rel,
            0,
            "L004",
            format!(
                "struct `{}` declared in lint.toml was not found",
                cov.struct_name
            ),
        ));
        return;
    };
    for field in fields.iter().filter(|f| f.public) {
        // Any `.field` occurrence counts: a sweep *setting* a knob is
        // exercising it just as much as a report reading it.
        let used = ws.files.values().any(|other| {
            cov.used_in.iter().any(|p| in_scope(&other.rel, p))
                && touches_field(&other.toks, &field.name)
        });
        if !used {
            out.push(finding(
                &fd.rel,
                field.line,
                "L004",
                format!(
                    "config knob `{}.{}` is never referenced by {} — add it to a sweep or \
                     report, or remove it",
                    cov.struct_name,
                    field.name,
                    cov.used_in.join(", ")
                ),
            ));
        }
    }
}

fn touches_field(toks: &[Tok], field: &str) -> bool {
    (0..toks.len().saturating_sub(1)).any(|k| toks[k].is_punct(".") && toks[k + 1].is_ident(field))
}

// -------------------------------------------------------------------- L005

pub struct Fingerprint {
    pub version: Option<u64>,
    pub hash: u64,
    pub canonical: String,
}

/// Compute the structural fingerprint of the packed trace format: the
/// ordered `PackedOp` field names + types, every numeric constant in the
/// codec (kind tags, encoding bases), and the trace format version.
pub fn compute_fingerprint(ws: &Workspace, cfg: &LintConfig) -> Result<Fingerprint, String> {
    let tf = &cfg.trace_format;
    let packed = ws
        .file(&tf.packed_file)
        .ok_or_else(|| format!("trace_format packed_file `{}` not found", tf.packed_file))?;
    let fields = lexer::struct_fields(&packed.toks, &tf.struct_name).ok_or_else(|| {
        format!(
            "struct `{}` not found in `{}`",
            tf.struct_name, tf.packed_file
        )
    })?;
    let codec = ws
        .file(&tf.codec_file)
        .ok_or_else(|| format!("trace_format codec_file `{}` not found", tf.codec_file))?;
    let mut consts = lexer::numeric_consts(&codec.toks);
    consts.sort();
    let mut canonical = format!("struct {}{{", tf.struct_name);
    for f in &fields {
        canonical.push_str(&format!("{}:{};", f.name, f.ty));
    }
    canonical.push('}');
    for (name, value, _) in &consts {
        canonical.push_str(&format!("|{name}={value}"));
    }
    let version = consts
        .iter()
        .find(|(name, _, _)| name == &tf.version_const)
        .and_then(|(_, value, _)| parse_int(value));
    Ok(Fingerprint {
        version,
        hash: fnv1a64(canonical.as_bytes()),
        canonical,
    })
}

fn parse_int(text: &str) -> Option<u64> {
    let cleaned: String = text.chars().filter(|c| *c != '_').collect();
    let digits: String = cleaned.chars().take_while(|c| c.is_ascii_digit()).collect();
    digits.parse().ok()
}

fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for b in bytes {
        hash ^= u64::from(*b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn trace_format(ws: &Workspace, cfg: &LintConfig, out: &mut Vec<Finding>) {
    let tf = &cfg.trace_format;
    if tf.packed_file.is_empty() {
        return;
    }
    let fp = match compute_fingerprint(ws, cfg) {
        Ok(fp) => fp,
        Err(e) => {
            out.push(finding(&tf.packed_file, 0, "L005", e));
            return;
        }
    };
    let version_line = ws
        .file(&tf.codec_file)
        .map(|fd| {
            lexer::numeric_consts(&fd.toks)
                .iter()
                .find(|(name, _, _)| name == &tf.version_const)
                .map(|(_, _, line)| *line)
                .unwrap_or(0)
        })
        .unwrap_or(0);
    let Some(version) = fp.version else {
        out.push(finding(
            &tf.codec_file,
            0,
            "L005",
            format!(
                "version constant `{}` not found in codec file",
                tf.version_const
            ),
        ));
        return;
    };
    let record_path = ws.root.join(&tf.record);
    let recorded = std::fs::read_to_string(&record_path)
        .ok()
        .and_then(|t| parse_record(&t));
    let Some((rec_version, rec_hash)) = recorded else {
        out.push(finding(
            &tf.codec_file,
            version_line,
            "L005",
            format!(
                "no recorded trace-format fingerprint at `{}` — run `aurora-lint --fingerprint` \
                 and commit the output there",
                tf.record
            ),
        ));
        return;
    };
    match (fp.hash == rec_hash, version == rec_version) {
        (true, true) => {}
        (false, true) => out.push(finding(
            &tf.packed_file,
            struct_line(ws, tf),
            "L005",
            format!(
                "trace format drift: the structural fingerprint changed \
                 (recorded {rec_hash:#018x}, computed {:#018x}) but `{}` is still {version} — \
                 bump the version and re-record with `aurora-lint --fingerprint`",
                fp.hash, tf.version_const
            ),
        )),
        (false, false) => out.push(finding(
            &tf.packed_file,
            struct_line(ws, tf),
            "L005",
            format!(
                "trace format changed and the version was bumped to {version} — acknowledge the \
                 new layout by re-recording `{}` with `aurora-lint --fingerprint`",
                tf.record
            ),
        )),
        (true, false) => out.push(finding(
            &tf.codec_file,
            version_line,
            "L005",
            format!(
                "`{}` is {version} but the recorded fingerprint says {rec_version} with an \
                 identical layout — re-record `{}` or revert the version change",
                tf.version_const, tf.record
            ),
        )),
    }
}

fn struct_line(ws: &Workspace, tf: &crate::config::TraceFormat) -> u32 {
    ws.file(&tf.packed_file)
        .map(|fd| {
            let toks = &fd.toks;
            (0..toks.len().saturating_sub(1))
                .find(|&k| toks[k].is_ident("struct") && toks[k + 1].is_ident(&tf.struct_name))
                .map(|k| toks[k].line)
                .unwrap_or(0)
        })
        .unwrap_or(0)
}

/// Parse a recorded fingerprint file: `version = N` and
/// `fingerprint = 0x<16 hex digits>` lines (order-independent).
pub fn parse_record(text: &str) -> Option<(u64, u64)> {
    let mut version = None;
    let mut hash = None;
    for line in text.lines() {
        let line = line.trim();
        if let Some(v) = line.strip_prefix("version") {
            version = v
                .trim()
                .strip_prefix('=')
                .and_then(|s| s.trim().parse().ok());
        } else if let Some(v) = line.strip_prefix("fingerprint") {
            hash = v
                .trim()
                .strip_prefix('=')
                .map(str::trim)
                .and_then(|s| s.strip_prefix("0x"))
                .and_then(|s| u64::from_str_radix(s, 16).ok());
        }
    }
    Some((version?, hash?))
}

// -------------------------------------------------------------------- L006

fn narrowing_casts(ws: &Workspace, cfg: &LintConfig, out: &mut Vec<Finding>) {
    for file in &cfg.narrowing_files {
        let Some(fd) = ws.file(file) else {
            out.push(finding(
                file,
                0,
                "L006",
                "narrowing-cast file declared in lint.toml was not found".to_string(),
            ));
            continue;
        };
        let toks = &fd.toks;
        for k in 0..toks.len().saturating_sub(1) {
            if toks[k].is_ident("as") && NARROW_TARGETS.contains(&toks[k + 1].text.as_str()) {
                out.push(finding(
                    &fd.rel,
                    toks[k].line,
                    "L006",
                    format!(
                        "unchecked narrowing cast `as {}` in trace codec — use `try_from` or a \
                         masked helper, or suppress with a range justification",
                        toks[k + 1].text
                    ),
                ));
            }
        }
    }
}

// ----------------------------------------------------------------- explain

pub const RULES: &[(&str, &str, &str)] = &[
    (
        "L000",
        "malformed suppression pragma",
        "Every `lint:allow(L0xx): <reason>` comment pragma must name at least one rule id of the \
         form L0xx and carry a non-empty reason after `):`. A pragma without a reason is \
         itself a finding: unexplained suppressions rot just like dead counters. Malformed \
         pragmas never suppress anything.",
    ),
    (
        "L001",
        "allocation in a hot-path function",
        "The simulator's per-op loop must stay allocation-free: `clone()`, `to_vec()`, \
         `format!`, `vec!`, stable sorts, heap collections (HashMap & friends) and \
         `Vec::new`-style constructors are banned inside the functions listed in \
         lint.toml's [[hot]] sections. Amortized growth of capacity-stable buffers \
         (`push` onto a Vec that reaches steady state) is deliberately out of scope. \
         Suppress only with a reason explaining why the allocation is bounded.",
    ),
    (
        "L002",
        "panic path in a hot-path function",
        "`unwrap()`, `expect()`, `panic!`-family macros and slice indexing without `get` \
         are banned in hot functions. The release profile uses panic=abort, so any of \
         these turns a model bug into a lost sweep. Convert to an infallible pattern \
         (`if let`, `get().copied().unwrap_or(..)`) or, where the invariant is real and \
         locally provable, add `// lint:allow(L002): <why it cannot fire>`.",
    ),
    (
        "L003",
        "dead counter",
        "Every pub field of the stats structs (SimStats and the per-unit stats structs it \
         aggregates) must be read somewhere outside its defining file — a report, a golden \
         table, or a test. A counter that is accumulated but never consumed is model drift \
         waiting to happen: it silently stops meaning what its name says. Reads are any \
         `.field` use that is not a plain or compound assignment target.",
    ),
    (
        "L004",
        "unexercised config knob",
        "Every pub field of MachineConfig must be referenced by aurora-bench's sweep/report \
         code. A knob nothing sweeps or prints is a knob whose effect on the model is \
         unvalidated — exactly the silent-drift failure mode the gem5 methodology papers \
         warn about. Setting a knob in a sweep counts as exercising it.",
    ),
    (
        "L005",
        "trace format drift without a version bump",
        "The 16-byte PackedOp layout and the codec constants are hashed into a structural \
         fingerprint recorded next to TRACE_FORMAT_VERSION (crates/isa/trace_format.fp). \
         Captured traces outlive the code that wrote them, so any layout change must bump \
         the version and re-record the fingerprint (`aurora-lint --fingerprint`). A hash \
         mismatch with an unchanged version fails the build.",
    ),
    (
        "L006",
        "unchecked narrowing cast in the trace codec",
        "`as u8`/`as u32`-style casts silently truncate. In codec.rs/packed.rs — the one \
         place where in-memory ops are bit-packed into the 16-byte record — a silent \
         truncation corrupts every replay of a captured trace. Use `try_from`, a masked \
         helper with a debug_assert, or suppress with a justification of the value range.",
    ),
];

pub fn explain(rule: &str) -> Option<String> {
    RULES
        .iter()
        .find(|(id, _, _)| *id == rule)
        .map(|(id, title, body)| format!("{id}: {title}\n\n{body}\n"))
}
