//! The rule engine. Every rule consumes the per-file [`crate::facts`] plus
//! the workspace [`Graph`]; suppression is applied by the caller (`lib.rs`),
//! which also owns the pragma-hygiene rules L000/L009.

use std::collections::{HashMap, HashSet};

use crate::config::LintConfig;
use crate::facts::{CallFact, Event, FileFacts, FnFacts, NARROW_TARGETS};
use crate::graph::{head, path_matches, peel_refs, FnId, Graph};
use crate::{Finding, Workspace};

/// Bumped whenever a rule's semantics change: folded into the incremental
/// cache key so upgrading the analyzer invalidates cached verdicts.
pub const RULE_SET_VERSION: u64 = 4;

pub fn run_all(ws: &Workspace, cfg: &LintConfig) -> Vec<Finding> {
    let graph = Graph::new(&ws.files, ws.extern_lines());
    let mut out = Vec::new();
    hot_path_rules(ws, cfg, &graph, &mut out);
    dead_counters(ws, cfg, &mut out);
    config_coverage(ws, cfg, &graph, &mut out);
    trace_format(ws, cfg, &mut out);
    narrowing_casts(ws, cfg, &mut out);
    determinism(ws, cfg, &graph, &mut out);
    unit_mixing(ws, cfg, &mut out);
    crate::concurrency::run(ws, cfg, &graph, &mut out);
    checkpoint_drift(ws, cfg, &mut out);
    untrusted_flows(ws, cfg, &graph, &mut out);
    wire_drift(ws, cfg, &mut out);
    out
}

fn finding(file: &str, line: u32, rule: &'static str, msg: String) -> Finding {
    Finding {
        file: file.to_string(),
        line,
        rule,
        msg,
    }
}

// ---------------------------------------------------------------- L001/L002

/// Resolve the configured hot roots, reporting config drift (missing file
/// or root) as L001 findings.
fn hot_roots(ws: &Workspace, cfg: &LintConfig, g: &Graph, out: &mut Vec<Finding>) -> Vec<FnId> {
    let mut roots = Vec::new();
    for hot in &cfg.hot {
        if !ws.files.iter().any(|(rel, _)| path_matches(rel, &hot.file)) {
            out.push(finding(
                &hot.file,
                0,
                "L001",
                "hot-path file declared in lint.toml was not found in the workspace".to_string(),
            ));
            continue;
        }
        for root in &hot.roots {
            let ids = g.find_root(&hot.file, root);
            if ids.is_empty() {
                out.push(finding(
                    &hot.file,
                    0,
                    "L001",
                    format!(
                        "hot root `{root}` declared in lint.toml does not exist in this file — \
                         update lint.toml"
                    ),
                ));
            }
            roots.extend(ids);
        }
    }
    roots
}

/// Human-readable provenance for a transitively-hot function.
fn via(g: &Graph, parent: &HashMap<FnId, FnId>, id: FnId) -> String {
    let chain = g.chain_to(parent, id);
    if chain.len() <= 1 {
        "declared hot root".to_string()
    } else {
        format!("hot via {}", chain.join(" -> "))
    }
}

fn hot_path_rules(ws: &Workspace, cfg: &LintConfig, g: &Graph, out: &mut Vec<Finding>) {
    let roots = hot_roots(ws, cfg, g, out);
    if roots.is_empty() {
        return;
    }
    let parent = g.reach(&roots);
    let mut ids: Vec<FnId> = parent.keys().copied().collect();
    ids.sort_unstable();
    for id in ids {
        let f = g.fn_facts(id);
        let rel = g.rel(id);
        let prov = via(g, &parent, id);
        let qual = f.qual_name();
        for ev in &f.events {
            match ev {
                Event::Alloc { what, line } => out.push(finding(
                    rel,
                    *line,
                    "L001",
                    format!("`{what}` allocates inside `{qual}` ({prov})"),
                )),
                Event::Panic { what, line } => out.push(finding(
                    rel,
                    *line,
                    "L002",
                    format!(
                        "`{what}` can panic inside `{qual}` ({prov}) — use an infallible \
                         pattern or a reasoned pragma"
                    ),
                )),
                Event::IndexOp { line, .. } => out.push(finding(
                    rel,
                    *line,
                    "L002",
                    format!(
                        "slice index without `get` inside `{qual}` ({prov}) — indexing panics \
                         on out-of-bounds"
                    ),
                )),
                Event::Arith { what, line } => out.push(finding(
                    rel,
                    *line,
                    "L010",
                    format!(
                        "unchecked arithmetic on {what} inside `{qual}` ({prov}) can wrap in a \
                         release build — use `saturating_*`/`checked_*`, or guard the operands \
                         so the range analysis can prove the result fits"
                    ),
                )),
                _ => {}
            }
        }
    }
}

/// The `--graph` dump: every hot function with its root→leaf chain.
pub fn graph_report(ws: &Workspace, cfg: &LintConfig) -> String {
    let g = Graph::new(&ws.files, ws.extern_lines());
    let mut sink = Vec::new();
    let roots = hot_roots(ws, cfg, &g, &mut sink);
    let parent = g.reach(&roots);
    let mut ids: Vec<FnId> = parent.keys().copied().collect();
    ids.sort_unstable();
    let mut out = format!(
        "hot set: {} function(s) reachable from {} root(s)\n",
        ids.len(),
        roots.len()
    );
    for id in ids {
        let f = g.fn_facts(id);
        let chain = g.chain_to(&parent, id);
        let prov = if chain.len() <= 1 {
            "(root)".to_string()
        } else {
            chain.join(" -> ")
        };
        out.push_str(&format!(
            "{}:{}: {}  {}\n",
            g.rel(id),
            f.decl_line,
            f.qual_name(),
            prov
        ));
    }
    for s in sink {
        out.push_str(&format!("warning: {}\n", s.msg));
    }
    out
}

// -------------------------------------------------------------------- L003

fn dead_counters(ws: &Workspace, cfg: &LintConfig, out: &mut Vec<Finding>) {
    let stats = &cfg.stats;
    if stats.file.is_empty() {
        return;
    }
    if ws.facts_of(&stats.file).is_none() {
        out.push(finding(
            &stats.file,
            0,
            "L003",
            "stats file declared in lint.toml was not found".to_string(),
        ));
        return;
    }
    // Resolve the transitive closure of counter structs: every pub field of
    // the root structs, recursing into struct-typed fields defined anywhere
    // in the workspace.
    let mut worklist: Vec<(String, String)> = stats
        .structs
        .iter()
        .map(|s| (stats.file.clone(), s.clone()))
        .collect();
    let mut visited: Vec<String> = Vec::new();
    while let Some((def_file, struct_name)) = worklist.pop() {
        if visited.contains(&struct_name) {
            continue;
        }
        visited.push(struct_name.clone());
        let Some(facts) = ws.facts_of(&def_file) else {
            continue;
        };
        let Some((_, _, fields)) = facts.structs.iter().find(|(n, _, _)| *n == struct_name) else {
            out.push(finding(
                &def_file,
                0,
                "L003",
                format!("struct `{struct_name}` declared in lint.toml was not found"),
            ));
            continue;
        };
        for field in fields.iter().filter(|f| f.public) {
            if let Some((sub_file, sub_name)) = resolve_struct(ws, &field.ty) {
                worklist.push((sub_file, sub_name));
            }
            let read = ws.files.iter().any(|(rel, other)| {
                *rel != def_file
                    && *rel != stats.file
                    && stats.read_scope.iter().any(|p| in_scope(rel, p))
                    && other.field_reads.contains(&field.name)
            });
            if !read {
                out.push(finding(
                    &def_file,
                    field.line,
                    "L003",
                    format!(
                        "dead counter: `{struct_name}.{}` is never read outside its defining \
                         file — surface it in a report or remove it",
                        field.name
                    ),
                ));
            }
        }
    }
}

/// If `ty` names a struct with named fields somewhere in the workspace,
/// return (defining file, struct name).
fn resolve_struct(ws: &Workspace, ty: &str) -> Option<(String, String)> {
    let h = head(peel_refs(ty));
    if h.is_empty() || h.chars().next().is_some_and(|c| c.is_lowercase()) {
        return None;
    }
    for (rel, facts) in &ws.files {
        if let Some((name, _, fields)) = facts.structs.iter().find(|(n, _, _)| n == h) {
            if !fields.is_empty() {
                return Some((rel.clone(), name.clone()));
            }
        }
    }
    None
}

fn in_scope(rel: &str, prefix: &str) -> bool {
    rel == prefix || rel.starts_with(&format!("{prefix}/"))
}

// -------------------------------------------------------------------- L004

fn config_coverage(ws: &Workspace, cfg: &LintConfig, g: &Graph, out: &mut Vec<Finding>) {
    let cov = &cfg.config_coverage;
    if cov.file.is_empty() {
        return;
    }
    let Some(cfg_facts) = ws.facts_of(&cov.file) else {
        out.push(finding(
            &cov.file,
            0,
            "L004",
            "config file declared in lint.toml was not found".to_string(),
        ));
        return;
    };
    let Some((_, _, fields)) = cfg_facts
        .structs
        .iter()
        .find(|(n, _, _)| *n == cov.struct_name)
    else {
        out.push(finding(
            &cov.file,
            0,
            "L004",
            format!(
                "struct `{}` declared in lint.toml was not found",
                cov.struct_name
            ),
        ));
        return;
    };
    for field in fields.iter().filter(|f| f.public) {
        // An access counts only when the receiver *resolves to the knob
        // struct itself* — a same-named field on an unrelated struct does
        // not. Setting a knob in a sweep is exercising it just as much as
        // a report reading it.
        let used = ws.files.iter().enumerate().any(|(fi, (rel, facts))| {
            cov.used_in.iter().any(|p| in_scope(rel, p))
                && facts.fns.iter().any(|f| {
                    f.accesses.iter().any(|a| {
                        a.field == field.name
                            && g.resolve_type(&a.chain, fi, &f.self_ty)
                                .is_some_and(|ty| head(peel_refs(&ty)) == cov.struct_name)
                    })
                })
        });
        if !used {
            out.push(finding(
                &cov.file,
                field.line,
                "L004",
                format!(
                    "config knob `{}.{}` is never referenced by {} — add it to a sweep or \
                     report, or remove it",
                    cov.struct_name,
                    field.name,
                    cov.used_in.join(", ")
                ),
            ));
        }
    }
}

// -------------------------------------------------------------------- L005

pub struct Fingerprint {
    pub version: Option<u64>,
    pub hash: u64,
    pub canonical: String,
}

/// Compute the structural fingerprint of the packed trace format: the
/// ordered `PackedOp` field names + types, every numeric constant in the
/// codec (kind tags, encoding bases), and the trace format version.
pub fn compute_fingerprint(ws: &Workspace, cfg: &LintConfig) -> Result<Fingerprint, String> {
    let tf = &cfg.trace_format;
    let packed = ws
        .facts_of(&tf.packed_file)
        .ok_or_else(|| format!("trace_format packed_file `{}` not found", tf.packed_file))?;
    let (_, _, fields) = packed
        .structs
        .iter()
        .find(|(n, _, _)| *n == tf.struct_name)
        .ok_or_else(|| {
            format!(
                "struct `{}` not found in `{}`",
                tf.struct_name, tf.packed_file
            )
        })?;
    let codec = ws
        .facts_of(&tf.codec_file)
        .ok_or_else(|| format!("trace_format codec_file `{}` not found", tf.codec_file))?;
    let mut consts = codec.consts.clone();
    consts.sort();
    let mut canonical = format!("struct {}{{", tf.struct_name);
    for f in fields {
        canonical.push_str(&format!("{}:{};", f.name, f.ty));
    }
    canonical.push('}');
    for (name, value, _) in &consts {
        canonical.push_str(&format!("|{name}={value}"));
    }
    let version = consts
        .iter()
        .find(|(name, _, _)| name == &tf.version_const)
        .and_then(|(_, value, _)| parse_int(value));
    Ok(Fingerprint {
        version,
        hash: crate::fnv1a64(canonical.as_bytes()),
        canonical,
    })
}

fn parse_int(text: &str) -> Option<u64> {
    let cleaned: String = text.chars().filter(|c| *c != '_').collect();
    let digits: String = cleaned.chars().take_while(|c| c.is_ascii_digit()).collect();
    digits.parse().ok()
}

fn trace_format(ws: &Workspace, cfg: &LintConfig, out: &mut Vec<Finding>) {
    let tf = &cfg.trace_format;
    if tf.packed_file.is_empty() {
        return;
    }
    let fp = match compute_fingerprint(ws, cfg) {
        Ok(fp) => fp,
        Err(e) => {
            out.push(finding(&tf.packed_file, 0, "L005", e));
            return;
        }
    };
    let version_line = ws
        .facts_of(&tf.codec_file)
        .and_then(|f| {
            f.consts
                .iter()
                .find(|(name, _, _)| name == &tf.version_const)
                .map(|(_, _, line)| *line)
        })
        .unwrap_or(0);
    let Some(version) = fp.version else {
        out.push(finding(
            &tf.codec_file,
            0,
            "L005",
            format!(
                "version constant `{}` not found in codec file",
                tf.version_const
            ),
        ));
        return;
    };
    let record_path = ws.root.join(&tf.record);
    let recorded = std::fs::read_to_string(&record_path)
        .ok()
        .and_then(|t| parse_record(&t));
    let Some((rec_version, rec_hash)) = recorded else {
        out.push(finding(
            &tf.codec_file,
            version_line,
            "L005",
            format!(
                "no recorded trace-format fingerprint at `{}` — run `aurora-lint --fingerprint` \
                 and commit the output there",
                tf.record
            ),
        ));
        return;
    };
    match (fp.hash == rec_hash, version == rec_version) {
        (true, true) => {}
        (false, true) => out.push(finding(
            &tf.packed_file,
            struct_line(ws, tf),
            "L005",
            format!(
                "trace format drift: the structural fingerprint changed \
                 (recorded {rec_hash:#018x}, computed {:#018x}) but `{}` is still {version} — \
                 bump the version and re-record with `aurora-lint --fingerprint`",
                fp.hash, tf.version_const
            ),
        )),
        (false, false) => out.push(finding(
            &tf.packed_file,
            struct_line(ws, tf),
            "L005",
            format!(
                "trace format changed and the version was bumped to {version} — acknowledge the \
                 new layout by re-recording `{}` with `aurora-lint --fingerprint`",
                tf.record
            ),
        )),
        (true, false) => out.push(finding(
            &tf.codec_file,
            version_line,
            "L005",
            format!(
                "`{}` is {version} but the recorded fingerprint says {rec_version} with an \
                 identical layout — re-record `{}` or revert the version change",
                tf.version_const, tf.record
            ),
        )),
    }
}

fn struct_line(ws: &Workspace, tf: &crate::config::TraceFormat) -> u32 {
    ws.facts_of(&tf.packed_file)
        .and_then(|f| {
            f.structs
                .iter()
                .find(|(n, _, _)| *n == tf.struct_name)
                .map(|(_, line, _)| *line)
        })
        .unwrap_or(0)
}

/// Parse a recorded fingerprint file: `version = N` and
/// `fingerprint = 0x<16 hex digits>` lines (order-independent).
pub fn parse_record(text: &str) -> Option<(u64, u64)> {
    let mut version = None;
    let mut hash = None;
    for line in text.lines() {
        let line = line.trim();
        if let Some(v) = line.strip_prefix("version") {
            version = v
                .trim()
                .strip_prefix('=')
                .and_then(|s| s.trim().parse().ok());
        } else if let Some(v) = line.strip_prefix("fingerprint") {
            hash = v
                .trim()
                .strip_prefix('=')
                .map(str::trim)
                .and_then(|s| s.strip_prefix("0x"))
                .and_then(|s| u64::from_str_radix(s, 16).ok());
        }
    }
    Some((version?, hash?))
}

// -------------------------------------------------------------------- L006

fn narrowing_casts(ws: &Workspace, cfg: &LintConfig, out: &mut Vec<Finding>) {
    for file in &cfg.narrowing_files {
        let Some(facts) = ws.facts_of(file) else {
            out.push(finding(
                file,
                0,
                "L006",
                "narrowing-cast file declared in lint.toml was not found".to_string(),
            ));
            continue;
        };
        for f in &facts.fns {
            for ev in &f.events {
                if let Event::Cast { ty, line } = ev {
                    if NARROW_TARGETS.contains(&ty.as_str()) {
                        out.push(finding(
                            file,
                            *line,
                            "L006",
                            format!(
                                "unchecked narrowing cast `as {ty}` in trace codec — use \
                                 `try_from` or a masked helper, or suppress with a range \
                                 justification"
                            ),
                        ));
                    }
                }
            }
        }
    }
}

// -------------------------------------------------------------------- L007

/// Containers whose iteration order is nondeterministic across runs.
const HASH_CONTAINERS: &[&str] = &["HashMap", "HashSet"];

fn determinism(ws: &Workspace, cfg: &LintConfig, g: &Graph, out: &mut Vec<Finding>) {
    if cfg.determinism_files.is_empty() {
        return;
    }
    let mut roots = Vec::new();
    for file in &cfg.determinism_files {
        if !ws.files.iter().any(|(rel, _)| path_matches(rel, file)) {
            out.push(finding(
                file,
                0,
                "L007",
                "determinism file declared in lint.toml was not found".to_string(),
            ));
            continue;
        }
        roots.extend(g.fns_in_file(file));
    }
    let parent = g.reach(&roots);
    let mut ids: Vec<FnId> = parent.keys().copied().collect();
    ids.sort_unstable();
    for id in ids {
        let f = g.fn_facts(id);
        let rel = g.rel(id);
        let prov = via(g, &parent, id);
        let qual = f.qual_name();
        for ev in &f.events {
            match ev {
                Event::Nondet { what, line } => out.push(finding(
                    rel,
                    *line,
                    "L007",
                    format!(
                        "{what} inside `{qual}` ({prov}) — replay must be bit-identical across \
                         runs; thread a seed or counter through instead"
                    ),
                )),
                Event::HashIter { chain, line } => {
                    let Some(ty) = g.resolve_type(chain, id.0, &f.self_ty) else {
                        continue;
                    };
                    let h = head(peel_refs(&ty));
                    if HASH_CONTAINERS.contains(&h) {
                        out.push(finding(
                            rel,
                            *line,
                            "L007",
                            format!(
                                "iteration over `{h}` has nondeterministic order inside `{qual}` \
                                 ({prov}) — use a BTreeMap/Vec or sort before iterating"
                            ),
                        ));
                    }
                }
                _ => {}
            }
        }
    }
}

// -------------------------------------------------------------------- L008

fn unit_mixing(ws: &Workspace, cfg: &LintConfig, out: &mut Vec<Finding>) {
    if cfg.units_files.is_empty() {
        return;
    }
    for (rel, facts) in &ws.files {
        if !cfg.units_files.iter().any(|p| in_scope(rel, p)) {
            continue;
        }
        for f in facts.fns.iter().filter(|f| !f.in_test) {
            for ev in &f.events {
                if let Event::UnitMix { cyc, cnt, line } = ev {
                    out.push(finding(
                        rel,
                        *line,
                        "L008",
                        format!(
                            "`{cyc}` (cycles) combined with `{cnt}` (a count) in `{}` — unit \
                             mixing; make the conversion explicit with a cast or rename the \
                             non-cycle operand",
                            f.qual_name()
                        ),
                    ));
                }
            }
        }
    }
}

// -------------------------------------------------------------------- L014

/// Does `f` participate in the checkpoint codec on the given side? Either
/// its signature mentions the writer/reader type, or it constructs one.
fn codec_side(f: &FnFacts, marker: &str) -> bool {
    f.params.iter().any(|t| t.contains(marker))
        || f.calls.iter().any(
            |c| matches!(c, CallFact::Qualified { ty, name, .. } if ty == marker && name == "new"),
        )
}

/// Every field a fn touches on `self` (any access / write accesses only).
fn self_fields(f: &FnFacts, writes_only: bool) -> HashSet<&str> {
    f.accesses
        .iter()
        .filter(|a| a.chain == "self" && (!writes_only || a.write))
        .map(|a| a.field.as_str())
        .collect()
}

/// L014: cross-check each Snapshot save/restore pair against the fields
/// the two sides actually touch. A field save serializes but restore never
/// mentions — or restore writes but save never serialized — is drift: the
/// checkpoint byte stream and the struct disagree, the statically visible
/// shape of the FPU queue-capacity restore bug PR 7 caught dynamically.
///
/// "Touched" is asymmetric on purpose: the save side counts *any* access
/// (serializing `self.tags.len()` covers `tags`), while the restore side
/// fires only on *writes* for the never-saved direction — restore reading
/// `self.cfg.instr_queue` to size a buffer is a bound, not state.
fn checkpoint_drift(ws: &Workspace, cfg: &LintConfig, out: &mut Vec<Finding>) {
    const SAVE_NAMES: &[&str] = &["save", "save_checkpoint"];
    const RESTORE_NAMES: &[&str] = &["restore", "restore_checkpoint"];
    for (rel, facts) in &ws.files {
        let mut pairs: HashMap<&str, (Option<&FnFacts>, Option<&FnFacts>)> = HashMap::new();
        for f in facts
            .fns
            .iter()
            .filter(|f| !f.in_test && !f.self_ty.is_empty())
        {
            if SAVE_NAMES.contains(&f.name.as_str()) && codec_side(f, &cfg.checkpoint.writer) {
                pairs.entry(&f.self_ty).or_default().0 = Some(f);
            }
            if RESTORE_NAMES.contains(&f.name.as_str()) && codec_side(f, &cfg.checkpoint.reader) {
                pairs.entry(&f.self_ty).or_default().1 = Some(f);
            }
        }
        let mut tys: Vec<&&str> = pairs.keys().collect();
        tys.sort();
        for ty in tys {
            let (Some(save), Some(restore)) = pairs[*ty] else {
                continue;
            };
            // Trait declarations and types defined elsewhere have no
            // struct layout here to check against.
            let Some((_, _, fields)) = facts.structs.iter().find(|(n, _, _)| n == *ty) else {
                continue;
            };
            let saved = self_fields(save, false);
            let restored_any = self_fields(restore, false);
            let restored_writes = self_fields(restore, true);
            for field in fields {
                let name = field.name.as_str();
                if saved.contains(name) && !restored_any.contains(name) {
                    out.push(finding(
                        rel,
                        field.line,
                        "L014",
                        format!(
                            "checkpoint drift in `{ty}`: `{name}` is serialized by \
                             `{}` but `{}` never touches it — a restored machine silently \
                             keeps its pre-restore `{name}`",
                            save.qual_name(),
                            restore.qual_name()
                        ),
                    ));
                } else if restored_writes.contains(name) && !saved.contains(name) {
                    out.push(finding(
                        rel,
                        field.line,
                        "L014",
                        format!(
                            "checkpoint drift in `{ty}`: `{name}` is written by \
                             `{}` but `{}` never serializes it — restore consumes or resets \
                             state the checkpoint does not carry",
                            restore.qual_name(),
                            save.qual_name()
                        ),
                    ));
                }
            }
        }
    }
}

// -------------------------------------------------------------------- L015

/// L015: package the taint pass's findings. The flow analysis itself runs
/// in the deep phase (`summary.rs`) because it needs parsed bodies, which
/// the rule engine does not keep; here we only re-emit its results and
/// report `[[untrusted]]` config drift the same way L001 does for [[hot]].
fn untrusted_flows(ws: &Workspace, cfg: &LintConfig, g: &Graph, out: &mut Vec<Finding>) {
    for u in &cfg.untrusted {
        if !ws.files.iter().any(|(rel, _)| path_matches(rel, &u.file)) {
            out.push(finding(
                &u.file,
                0,
                "L015",
                "untrusted file declared in lint.toml was not found in the workspace".to_string(),
            ));
            continue;
        }
        for root in &u.roots {
            if g.find_root(&u.file, root).is_empty() {
                out.push(finding(
                    &u.file,
                    0,
                    "L015",
                    format!(
                        "untrusted root `{root}` declared in lint.toml does not exist in this \
                         file — update lint.toml"
                    ),
                ));
            }
        }
    }
    for (file, line, msg) in &ws.taints {
        out.push(finding(file, *line, "L015", msg.clone()));
    }
}

// -------------------------------------------------------------------- L016

/// Match a `"name"` / `"Type::name"` spec from lint.toml against one fn.
fn fn_spec_matches(f: &FnFacts, spec: &str) -> bool {
    match spec.split_once("::") {
        Some((ty, name)) => f.self_ty == ty && f.name == name,
        None => f.name == spec,
    }
}

/// Wire keys of one polarity used inside the named functions of a file.
fn keys_in_fns(facts: &FileFacts, specs: &[String], write: bool) -> Vec<(String, u32)> {
    let mut out = Vec::new();
    for f in facts
        .fns
        .iter()
        .filter(|f| specs.iter().any(|s| fn_spec_matches(f, s)))
    {
        for (w, key, line) in &facts.wire_keys {
            if *w == write && *line >= f.decl_line && *line <= f.end_line {
                out.push((key.clone(), *line));
            }
        }
    }
    out
}

/// L016: writer/reader wire-format drift. For `kind = "json"` every key
/// the readers look up must be emitted by some writer; for `kind =
/// "record"` the struct fields the writer serializes (reads) and the
/// reader reconstructs (writes through a struct literal) must be the
/// same set. The json direction is deliberately one-sided — writers may
/// emit keys a particular reader ignores — while the record check is
/// symmetric because a length-prefixed binary record has no way to skip
/// a field it does not understand.
fn wire_drift(ws: &Workspace, cfg: &LintConfig, out: &mut Vec<Finding>) {
    for pair in &cfg.wire {
        let writer = ws.facts_of(&pair.writer_file);
        let reader = ws.facts_of(&pair.reader_file);
        for (file, facts) in [(&pair.writer_file, writer), (&pair.reader_file, reader)] {
            if facts.is_none() {
                out.push(finding(
                    file,
                    0,
                    "L016",
                    "wire file declared in lint.toml was not found in the workspace".to_string(),
                ));
            }
        }
        let (Some(writer), Some(reader)) = (writer, reader) else {
            continue;
        };
        for (file, facts, specs) in [
            (&pair.writer_file, writer, &pair.writers),
            (&pair.reader_file, reader, &pair.readers),
        ] {
            for spec in specs.iter() {
                if !facts.fns.iter().any(|f| fn_spec_matches(f, spec)) {
                    out.push(finding(
                        file,
                        0,
                        "L016",
                        format!(
                            "wire function `{spec}` declared in lint.toml was not found — \
                             update lint.toml"
                        ),
                    ));
                }
            }
        }
        match pair.kind.as_str() {
            "json" => {
                let written: HashSet<String> = keys_in_fns(writer, &pair.writers, true)
                    .into_iter()
                    .map(|(k, _)| k)
                    .collect();
                let mut reads = keys_in_fns(reader, &pair.readers, false);
                reads.sort();
                reads.dedup();
                for (key, line) in reads {
                    if !written.contains(&key) {
                        out.push(finding(
                            &pair.reader_file,
                            line,
                            "L016",
                            format!(
                                "wire-format drift: reader looks up key `\"{key}\"` that no \
                                 writer in `{}` ever emits — the lookup will always miss",
                                pair.writer_file
                            ),
                        ));
                    }
                }
            }
            "record" => {
                let wfns: Vec<&FnFacts> = writer
                    .fns
                    .iter()
                    .filter(|f| pair.writers.iter().any(|s| fn_spec_matches(f, s)))
                    .collect();
                let rfns: Vec<&FnFacts> = reader
                    .fns
                    .iter()
                    .filter(|f| pair.readers.iter().any(|s| fn_spec_matches(f, s)))
                    .collect();
                let serialized: HashSet<&str> = wfns
                    .iter()
                    .flat_map(|f| f.accesses.iter())
                    .map(|a| a.field.as_str())
                    .collect();
                for sname in &pair.structs {
                    let def = [(&pair.writer_file, writer), (&pair.reader_file, reader)]
                        .into_iter()
                        .find_map(|(file, facts)| {
                            facts
                                .structs
                                .iter()
                                .find(|(n, _, _)| n == sname)
                                .map(|s| (file, s))
                        });
                    let Some((def_file, (_, _, fdefs))) = def else {
                        out.push(finding(
                            &pair.writer_file,
                            0,
                            "L016",
                            format!(
                                "wire struct `{sname}` declared in lint.toml was not found in \
                                 the writer or reader file — update lint.toml"
                            ),
                        ));
                        continue;
                    };
                    let lit_chain = format!("t:{sname}");
                    let reconstructed: HashSet<&str> = rfns
                        .iter()
                        .flat_map(|f| f.accesses.iter())
                        .filter(|a| a.write && a.chain == lit_chain)
                        .map(|a| a.field.as_str())
                        .collect();
                    for fd in fdefs {
                        let name = fd.name.as_str();
                        if serialized.contains(name) && !reconstructed.contains(name) {
                            out.push(finding(
                                def_file,
                                fd.line,
                                "L016",
                                format!(
                                    "wire-format drift in `{sname}`: `{name}` is serialized \
                                     by the writer but the reader never reconstructs it — \
                                     decoded records silently drop the field"
                                ),
                            ));
                        } else if reconstructed.contains(name) && !serialized.contains(name) {
                            out.push(finding(
                                def_file,
                                fd.line,
                                "L016",
                                format!(
                                    "wire-format drift in `{sname}`: the reader fills `{name}` \
                                     but the writer never serializes it — the value is invented \
                                     at decode time, not carried on the wire"
                                ),
                            ));
                        }
                    }
                }
            }
            _ => {}
        }
    }
}

// ----------------------------------------------------------------- explain

pub const RULES: &[(&str, &str, &str)] = &[
    (
        "L000",
        "malformed suppression pragma",
        "Every `lint:allow(L0xx): <reason>` comment pragma must name at least one rule id of the \
         form L0xx and carry a non-empty reason after `):`. A pragma without a reason is \
         itself a finding: unexplained suppressions rot just like dead counters. Malformed \
         pragmas never suppress anything.",
    ),
    (
        "L001",
        "allocation in a hot-path function",
        "The simulator's per-op loop must stay allocation-free: `clone()`, `to_vec()`, \
         `format!`, `vec!`, stable sorts, heap collections (HashMap & friends) and \
         `Vec::new`-style constructors are banned inside the hot set. The hot set is computed \
         *transitively*: lint.toml's [[hot]] sections declare only the roots (e.g. \
         `Simulator::feed_packed`), and every workspace function reachable from them through \
         the call graph — including methods reached through field chains, `Index` impls \
         reached through `[]`, and calls made inside closures — inherits the constraint. Each \
         diagnostic names the call chain that made the function hot. Amortized growth of \
         capacity-stable buffers (`push` onto a Vec that reaches steady state) is deliberately \
         out of scope. Suppress only with a reason explaining why the allocation is bounded.",
    ),
    (
        "L002",
        "panic path in a hot-path function",
        "`unwrap()`, `expect()`, `panic!`-family macros and slice indexing without `get` \
         are banned in the hot set (computed transitively from the lint.toml roots, like \
         L001 — the diagnostic names the call chain). The release profile uses panic=abort, \
         so any of these turns a model bug into a lost sweep. `debug_assert!` is exempt: it \
         compiles out of release builds. Convert to an infallible pattern (`if let`, \
         `get().copied().unwrap_or(..)`) or, where the invariant is real and locally \
         provable, add `// lint:allow(L002): <why it cannot fire>`.",
    ),
    (
        "L003",
        "dead counter",
        "Every pub field of the stats structs (SimStats and the per-unit stats structs it \
         aggregates) must be read somewhere outside its defining file — a report, a golden \
         table, or a test. A counter that is accumulated but never consumed is model drift \
         waiting to happen: it silently stops meaning what its name says. Reads are any \
         `.field` use that is not a plain or compound assignment target.",
    ),
    (
        "L004",
        "unexercised config knob",
        "Every pub field of MachineConfig must be referenced by aurora-bench's sweep/report \
         code. A knob nothing sweeps or prints is a knob whose effect on the model is \
         unvalidated — exactly the silent-drift failure mode the gem5 methodology papers \
         warn about. Accesses are matched *by receiver type*, not by field name alone: a \
         same-named field on an unrelated struct does not count, while a knob set through a \
         typed closure parameter does. Setting a knob in a sweep counts as exercising it.",
    ),
    (
        "L005",
        "trace format drift without a version bump",
        "The 16-byte PackedOp layout and the codec constants are hashed into a structural \
         fingerprint recorded next to TRACE_FORMAT_VERSION (crates/isa/trace_format.fp). \
         Captured traces outlive the code that wrote them, so any layout change must bump \
         the version and re-record the fingerprint (`aurora-lint --fingerprint`). A hash \
         mismatch with an unchanged version fails the build.",
    ),
    (
        "L006",
        "unchecked narrowing cast in the trace codec",
        "`as u8`/`as u32`-style casts silently truncate. In codec.rs/packed.rs — the one \
         place where in-memory ops are bit-packed into the 16-byte record — a silent \
         truncation corrupts every replay of a captured trace. Use `try_from`, a masked \
         helper with a debug_assert, or suppress with a justification of the value range.",
    ),
    (
        "L007",
        "nondeterminism reachable from the replay core",
        "Replaying the same packed trace with the same config must produce bit-identical \
         results: the capture-once/replay-many methodology, the differential equivalence \
         tests, and every experiment in docs/EXPERIMENTS.md all assume it. Everything \
         reachable from the functions in lint.toml's [determinism] files therefore must not: \
         iterate a HashMap/HashSet (randomized seed → randomized order), read the wall clock \
         (`Instant::now`, `SystemTime::now`), construct a `DefaultHasher`/`RandomState`, or \
         observe a pointer address as an integer (`as *const _ as usize`). Thread a seed, a \
         cycle counter, or an ordered container through instead. The diagnostic names the \
         call chain from the replay core to the offending function.",
    ),
    (
        "L008",
        "cycle/count unit mixing",
        "Adding a cycle-valued expression (`*_cycle`, `*_cycles`) to a count-valued one \
         (`*_count`, `.len()`) with `+`/`-`/`+=`/`-=` is almost always a latency-accounting \
         bug — the sums type-check because both sides are u64. An explicit `as` cast on \
         either operand marks the conversion site as intentional and silences the rule, as \
         does renaming the operand to say what unit it actually carries. Checked in the \
         files listed under lint.toml's [units] section.",
    ),
    (
        "L009",
        "stale suppression pragma",
        "A `lint:allow(L0xx): reason` pragma whose rule no longer fires on its target line \
         or function is an error. Stale allows are silent rule holes: the code they excused \
         was fixed or moved, but the pragma keeps suppressing — so a *new* violation at the \
         same site would be invisible. Delete the pragma (or drop the rule id that no longer \
         fires from its list). L009 cannot itself be suppressed.",
    ),
    (
        "L010",
        "unchecked cycle/count arithmetic that can wrap",
        "Release builds wrap silently, so `+`/`-`/`*` on cycle- or count-named u64 values \
         inside the hot set must be provably in range. A per-function interval analysis \
         abstract-interprets each body: literals and locals carry exact ranges, unknown \
         one-shot operands get [0, 2^62] (one add of two unknowns is safe by construction; \
         a chain of four is not), and the target of a compound assignment through a field or \
         index is widened to the full u64 range — a persistent accumulator's history is \
         unbounded across calls. Subtraction is proven by ranges or by a dominating \
         `>=`/`>` guard on the same operands; `saturating_*`/`checked_*`/`wrapping_*` \
         methods and an explicit `as` cast on either operand silence the rule. See \
         docs/LINTS.md for the full lattice and its deliberate imprecisions.",
    ),
    (
        "L011",
        "lock-order inversion cycle",
        "Every `.lock()` taken while another guard is live contributes a directed edge to a \
         workspace-wide lock-order graph; calls made under a lock import the callee's \
         transitive acquisitions as edges too. A cycle means two threads can each hold one \
         lock and wait for the other — a deadlock that needs no misfortune beyond \
         scheduling. The diagnostic prints the cycle and names every acquisition site on \
         it. Locks are identified by label (`Type.field`, `fn::local`, `path::STATIC`), so \
         same-named statics in different modules alias — an over-approximation that errs \
         toward reporting. Fix by picking one global acquisition order; explicit `drop()` \
         of a guard mid-block is not modelled, so early drops need a reasoned pragma.",
    ),
    (
        "L012",
        "suspicious atomic ordering",
        "Two shapes fire, both on the same atomic target (matched by label, \
         workspace-wide): (1) a store/load ordering mismatch — a Release/SeqCst store \
         observed by a Relaxed load (or an Acquire/SeqCst load of a Relaxed store) does \
         not synchronize, so data published before the store may not be visible after the \
         load; (2) an all-Relaxed flag whose stores and loads cross a spawn boundary — if \
         the flag guards non-atomic data, readers can see the flag flip without the data. \
         Targets used only through read-modify-write ops (`fetch_add` counters, \
         `compare_exchange` state machines) are never flagged: Relaxed is the correct \
         ordering for a pure counter.",
    ),
    (
        "L013",
        "blocking call reachable from a pool worker loop",
        "Everything reachable from the worker-loop roots declared in lint.toml's [[pool]] \
         sections must not block: file I/O (`File::open`, `fs::*`, `read_to_string`), \
         `Mutex::lock`, and stdio macros (`println!` takes the stdout lock) stall a \
         work-stealing worker and idle its core for the rest of the sweep. The diagnostic \
         names the call chain from the pool root. Hoist the blocking call out of the drain \
         loop, buffer output per worker, or hand the work to a dedicated thread.",
    ),
    (
        "L014",
        "checkpoint save/restore field drift",
        "For every type whose `save`/`restore` signature uses the Snapshot codec \
         (SnapshotWriter/SnapshotReader, configurable under [checkpoint] in lint.toml), \
         the two sides must touch the same fields: a field save serializes but restore \
         never mentions leaves restored machines running with pre-restore state, and a \
         field restore writes but save never serialized consumes bytes the checkpoint \
         does not carry — both are the statically visible shape of the FPU queue-capacity \
         restore bug the differential suite caught dynamically in PR 7. Reads count as \
         coverage on the restore side (sizing a buffer from `self.cfg` is a bound, not \
         state), and deliberately uncheckpointed diagnostics belong in a named helper \
         called outside restore, not in the restore body — see the checkpoint codec \
         checklist in docs/LINTS.md.",
    ),
    (
        "L015",
        "untrusted data reaches an allocation or indexing sink unsanitized",
        "Functions declared under lint.toml's [[untrusted]] sections return (or receive, for \
         handlers) attacker-controlled bytes: socket reads and the JSON/protocol parse entry \
         points. A workspace-wide taint pass follows those values through locals, struct \
         construction, returns, and call edges — each function gets a parameter-to-return \
         flow summary, so taint crosses function boundaries in both directions — and fires \
         when a tainted value reaches a *size-shaped* sink with no dominating sanitizer: \
         `with_capacity`/`reserve` amounts, `vec![_; n]` lengths, slice indices, loop bounds, \
         and multiplications of two tainted magnitudes (cell-count arithmetic). Sanitizers \
         are comparisons against a limit that exit the tainted path, `.min(..)`/`.clamp(..)`, \
         and validated constructors (`x.validate()?`). The diagnostic names the source: the \
         declared root, or the call chain the taint rode in on. Fix by bounding the value \
         where it enters, not by suppressing the sink.",
    ),
    (
        "L016",
        "wire-format drift between a writer/reader pair",
        "Each [[wire]] pair in lint.toml names writer and reader functions that must agree on \
         a wire format, the way L014's save/restore check works for the Snapshot codec. \
         `kind = \"json\"` cross-checks string keys: every key a reader looks up \
         (`get`/`remove`/`contains_key`) must be emitted by some writer — a misspelled or \
         renamed key otherwise fails silently at the first decode. `kind = \"record\"` \
         cross-checks binary record layouts field-by-field: the struct fields the writer \
         serializes and the fields the reader's struct literal reconstructs must be the same \
         set, because a length-prefixed record cannot skip a field it does not understand. \
         The json direction is one-sided by design (writers may emit keys a given reader \
         ignores); the record check is symmetric.",
    ),
];

pub fn explain(rule: &str) -> Option<String> {
    RULES
        .iter()
        .find(|(id, _, _)| *id == rule)
        .map(|(id, title, body)| format!("{id}: {title}\n\n{body}\n"))
}
