//! Machine-readable output: `--format json` and `--format sarif`.
//!
//! Both writers are hand-rolled (the crate is zero-dependency by design);
//! [`json_well_formed`] is a full JSON grammar scanner used by the
//! selftests to prove the emitted documents parse.

use crate::rules::RULES;
use crate::Report;

/// Minimal JSON string escaping per RFC 8259.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// The `--format json` document: a flat findings array plus run totals.
pub fn render_json(report: &Report) -> String {
    let mut out = String::from("{\n  \"findings\": [");
    for (i, f) in report.findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"message\": \"{}\"}}",
            esc(&f.file),
            f.line,
            f.rule,
            esc(&f.msg)
        ));
    }
    if !report.findings.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str(&format!(
        "],\n  \"suppressed\": {},\n  \"files_scanned\": {}\n}}\n",
        report.suppressed, report.files_scanned
    ));
    out
}

/// The `--format sarif` document: SARIF 2.1.0 with the full rule catalogue
/// in `tool.driver.rules` and one `result` per finding.
pub fn render_sarif(report: &Report) -> String {
    let mut out = String::from(concat!(
        "{\n",
        "  \"$schema\": \"https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/",
        "Schemata/sarif-schema-2.1.0.json\",\n",
        "  \"version\": \"2.1.0\",\n",
        "  \"runs\": [{\n",
        "    \"tool\": {\"driver\": {\n",
        "      \"name\": \"aurora-lint\",\n",
        "      \"informationUri\": \"docs/LINTS.md\",\n",
        "      \"rules\": ["
    ));
    for (i, (id, title, body)) in RULES.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n        {{\"id\": \"{id}\", \"shortDescription\": {{\"text\": \"{}\"}}, \
             \"fullDescription\": {{\"text\": \"{}\"}}}}",
            esc(title),
            esc(body)
        ));
    }
    out.push_str("\n      ]\n    }},\n    \"results\": [");
    for (i, f) in report.findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let rule_index = RULES
            .iter()
            .position(|(id, _, _)| *id == f.rule)
            .unwrap_or(0);
        out.push_str(&format!(
            "\n      {{\"ruleId\": \"{}\", \"ruleIndex\": {rule_index}, \"level\": \"error\", \
             \"message\": {{\"text\": \"{}\"}}, \"locations\": [{{\"physicalLocation\": \
             {{\"artifactLocation\": {{\"uri\": \"{}\"}}, \"region\": {{\"startLine\": \
             {}}}}}}}]}}",
            f.rule,
            esc(&f.msg),
            esc(&f.file),
            f.line.max(1)
        ));
    }
    if !report.findings.is_empty() {
        out.push_str("\n    ");
    }
    out.push_str("]\n  }]\n}\n");
    out
}

// --------------------------------------------------------------- validation

/// Scan `s` as a complete JSON document (RFC 8259 grammar). Returns a
/// byte-offset diagnostic on the first violation. Used by the selftests to
/// prove the SARIF/JSON writers emit parseable output without pulling in a
/// JSON dependency.
pub fn json_well_formed(s: &str) -> Result<(), String> {
    let b = s.as_bytes();
    let mut i = 0usize;
    skip_ws(b, &mut i);
    value(b, &mut i)?;
    skip_ws(b, &mut i);
    if i != b.len() {
        return Err(format!("trailing content at byte {i}"));
    }
    Ok(())
}

fn skip_ws(b: &[u8], i: &mut usize) {
    while *i < b.len() && matches!(b[*i], b' ' | b'\t' | b'\n' | b'\r') {
        *i += 1;
    }
}

fn value(b: &[u8], i: &mut usize) -> Result<(), String> {
    match b.get(*i) {
        Some(b'{') => object(b, i),
        Some(b'[') => array(b, i),
        Some(b'"') => string(b, i),
        Some(b't') => literal(b, i, "true"),
        Some(b'f') => literal(b, i, "false"),
        Some(b'n') => literal(b, i, "null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => number(b, i),
        Some(c) => Err(format!("unexpected byte {:?} at {}", *c as char, *i)),
        None => Err(format!("unexpected end of input at byte {i}")),
    }
}

fn literal(b: &[u8], i: &mut usize, word: &str) -> Result<(), String> {
    if b[*i..].starts_with(word.as_bytes()) {
        *i += word.len();
        Ok(())
    } else {
        Err(format!("bad literal at byte {i}"))
    }
}

fn object(b: &[u8], i: &mut usize) -> Result<(), String> {
    *i += 1; // '{'
    skip_ws(b, i);
    if b.get(*i) == Some(&b'}') {
        *i += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, i);
        if b.get(*i) != Some(&b'"') {
            return Err(format!("expected object key at byte {i}"));
        }
        string(b, i)?;
        skip_ws(b, i);
        if b.get(*i) != Some(&b':') {
            return Err(format!("expected ':' at byte {i}"));
        }
        *i += 1;
        skip_ws(b, i);
        value(b, i)?;
        skip_ws(b, i);
        match b.get(*i) {
            Some(b',') => *i += 1,
            Some(b'}') => {
                *i += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or '}}' at byte {i}")),
        }
    }
}

fn array(b: &[u8], i: &mut usize) -> Result<(), String> {
    *i += 1; // '['
    skip_ws(b, i);
    if b.get(*i) == Some(&b']') {
        *i += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, i);
        value(b, i)?;
        skip_ws(b, i);
        match b.get(*i) {
            Some(b',') => *i += 1,
            Some(b']') => {
                *i += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or ']' at byte {i}")),
        }
    }
}

fn string(b: &[u8], i: &mut usize) -> Result<(), String> {
    *i += 1; // '"'
    while *i < b.len() {
        match b[*i] {
            b'"' => {
                *i += 1;
                return Ok(());
            }
            b'\\' => {
                *i += 1;
                match b.get(*i) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *i += 1,
                    Some(b'u') => {
                        *i += 1;
                        for _ in 0..4 {
                            if !b.get(*i).is_some_and(u8::is_ascii_hexdigit) {
                                return Err(format!("bad \\u escape at byte {i}"));
                            }
                            *i += 1;
                        }
                    }
                    _ => return Err(format!("bad escape at byte {i}")),
                }
            }
            c if c < 0x20 => return Err(format!("raw control byte in string at {i}")),
            _ => *i += 1,
        }
    }
    Err("unterminated string".to_string())
}

fn number(b: &[u8], i: &mut usize) -> Result<(), String> {
    let start = *i;
    if b.get(*i) == Some(&b'-') {
        *i += 1;
    }
    let digits_start = *i;
    while b.get(*i).is_some_and(u8::is_ascii_digit) {
        *i += 1;
    }
    if *i == digits_start {
        return Err(format!("bad number at byte {start}"));
    }
    if b.get(*i) == Some(&b'.') {
        *i += 1;
        if !b.get(*i).is_some_and(u8::is_ascii_digit) {
            return Err(format!("bad fraction at byte {i}"));
        }
        while b.get(*i).is_some_and(u8::is_ascii_digit) {
            *i += 1;
        }
    }
    if matches!(b.get(*i), Some(b'e' | b'E')) {
        *i += 1;
        if matches!(b.get(*i), Some(b'+' | b'-')) {
            *i += 1;
        }
        if !b.get(*i).is_some_and(u8::is_ascii_digit) {
            return Err(format!("bad exponent at byte {i}"));
        }
        while b.get(*i).is_some_and(u8::is_ascii_digit) {
            *i += 1;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Finding, Report};

    fn sample_report() -> Report {
        Report {
            findings: vec![
                Finding {
                    file: "crates/core/src/sim.rs".to_string(),
                    line: 42,
                    rule: "L001",
                    msg: "`vec!` allocates inside `Simulator::feed` (declared hot root)"
                        .to_string(),
                },
                Finding {
                    file: "crates/isa/src/codec.rs".to_string(),
                    line: 0,
                    rule: "L006",
                    msg: "tricky \"quotes\" and \\ backslashes\nnewline".to_string(),
                },
            ],
            suppressed: 3,
            files_scanned: 17,
            cache_hits: 0,
        }
    }

    #[test]
    fn json_output_is_well_formed() {
        let doc = render_json(&sample_report());
        json_well_formed(&doc).expect("json parses");
        assert!(doc.contains("\"rule\": \"L001\""));
        assert!(doc.contains("\"suppressed\": 3"));
    }

    #[test]
    fn sarif_output_is_well_formed_and_complete() {
        let doc = render_sarif(&sample_report());
        json_well_formed(&doc).expect("sarif parses");
        assert!(doc.contains("\"version\": \"2.1.0\""));
        assert!(doc.contains("\"name\": \"aurora-lint\""));
        // Every catalogue rule is present, findings carry clamped lines.
        for (id, _, _) in RULES {
            assert!(doc.contains(&format!("\"id\": \"{id}\"")), "{id} missing");
        }
        assert!(doc.contains("\"startLine\": 1"), "line 0 must clamp to 1");
    }

    #[test]
    fn empty_report_renders_empty_arrays() {
        let empty = Report {
            findings: vec![],
            suppressed: 0,
            files_scanned: 0,
            cache_hits: 0,
        };
        json_well_formed(&render_json(&empty)).unwrap();
        json_well_formed(&render_sarif(&empty)).unwrap();
    }

    #[test]
    fn scanner_rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\": }",
            "{\"a\": 1} extra",
            "\"unterminated",
            "{\"a\" 1}",
            "01x",
            "nul",
        ] {
            assert!(json_well_formed(bad).is_err(), "{bad:?} should fail");
        }
        for good in ["{}", "[]", "[1, -2.5e3, \"x\\u00e9\", true, null]", "0"] {
            assert!(json_well_formed(good).is_ok(), "{good:?} should pass");
        }
    }
}
