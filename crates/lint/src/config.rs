//! Parser for `lint.toml` — a deliberately small TOML subset.
//!
//! Supported syntax: `#` comments, `[table]` headers, `[[array-of-tables]]`
//! headers, and `key = value` pairs where a value is a quoted string, an
//! integer, a bool, or a (possibly multiline) array of those. That is all
//! the checked-in configuration needs, and keeping the grammar this small
//! is what lets the analyzer stay zero-dependency.

use std::fmt;
use std::path::Path;

#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Str(String),
    Int(i64),
    Bool(bool),
    List(Vec<Value>),
}

impl Value {
    fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    fn as_str_list(&self) -> Option<Vec<String>> {
        match self {
            Value::List(items) => items
                .iter()
                .map(|v| v.as_str().map(str::to_string))
                .collect(),
            _ => None,
        }
    }
}

/// One `[[hot]]` entry: a file and its declared hot-path *roots*. The
/// analyzer computes the full hot set transitively from these over the
/// workspace call graph — leaf helpers are no longer listed here.
#[derive(Debug, Clone, Default)]
pub struct HotFile {
    pub file: String,
    /// Root declarations: `"name"` or `"Type::name"`.
    pub roots: Vec<String>,
}

/// One `[[untrusted]]` entry: where attacker-controlled bytes enter, and
/// which functions in the same file are trusted to bound them.
#[derive(Debug, Clone, Default)]
pub struct UntrustedFile {
    pub file: String,
    /// Source declarations: `"name"` or `"Type::name"`. The return value
    /// (and the parameters) of each is attacker-controlled.
    pub roots: Vec<String>,
    /// Range-validated constructors: taint flows *into* these (so their
    /// internal guards stay under analysis) but their return value is
    /// clean — they reject out-of-range input instead of propagating it.
    pub sanitizers: Vec<String>,
}

/// `[stats]` — where the counter structs live and where reads may come from.
#[derive(Debug, Clone, Default)]
pub struct StatsScope {
    pub file: String,
    pub structs: Vec<String>,
    pub read_scope: Vec<String>,
}

/// `[config_coverage]` — the knob struct and the code that must exercise it.
#[derive(Debug, Clone, Default)]
pub struct ConfigCoverage {
    pub file: String,
    pub struct_name: String,
    pub used_in: Vec<String>,
}

/// `[trace_format]` — the files whose structure is fingerprinted.
#[derive(Debug, Clone, Default)]
pub struct TraceFormat {
    pub packed_file: String,
    pub codec_file: String,
    pub struct_name: String,
    pub version_const: String,
    pub record: String,
}

/// One `[[wire]]` entry: a writer/reader function pair whose wire format
/// must stay in sync (L016). `kind = "json"` checks that every key the
/// readers look up is actually emitted by the writers; `kind = "record"`
/// checks that the struct fields the writer serializes and the reader
/// reconstructs are the same set.
#[derive(Debug, Clone, Default)]
pub struct WirePair {
    /// `"json"` or `"record"`.
    pub kind: String,
    pub writer_file: String,
    /// Writer functions, `"name"` or `"Type::name"`.
    pub writers: Vec<String>,
    pub reader_file: String,
    pub readers: Vec<String>,
    /// For `kind = "record"`: the structs whose fields travel on the wire.
    pub structs: Vec<String>,
}

/// `[checkpoint]` — the writer/reader types whose appearance in a
/// `save`/`restore` signature marks a Snapshot codec pair (L014).
#[derive(Debug, Clone)]
pub struct Checkpoint {
    pub writer: String,
    pub reader: String,
}

impl Default for Checkpoint {
    fn default() -> Checkpoint {
        Checkpoint {
            writer: "SnapshotWriter".to_string(),
            reader: "SnapshotReader".to_string(),
        }
    }
}

#[derive(Debug, Clone, Default)]
pub struct LintConfig {
    pub exclude: Vec<String>,
    pub hot: Vec<HotFile>,
    /// `[[pool]]` entries: worker-loop roots whose reachable set must stay
    /// free of blocking calls (L013). Same shape as `[[hot]]`.
    pub pool: Vec<HotFile>,
    pub checkpoint: Checkpoint,
    pub stats: StatsScope,
    pub config_coverage: ConfigCoverage,
    pub trace_format: TraceFormat,
    pub narrowing_files: Vec<String>,
    /// `[determinism] files`: everything reachable from the functions in
    /// these files must be free of L007 nondeterminism sources.
    pub determinism_files: Vec<String>,
    /// `[units] files`: path prefixes where L008 unit-mixing is checked.
    pub units_files: Vec<String>,
    /// `[[untrusted]]` entries: functions whose return value (and, for
    /// handlers, whose parameters) carry attacker-controlled bytes. The
    /// taint pass (L015) seeds its worklist here.
    pub untrusted: Vec<UntrustedFile>,
    /// `[[wire]]` entries: writer/reader pairs checked for format drift
    /// (L016).
    pub wire: Vec<WirePair>,
}

#[derive(Debug)]
pub struct ConfigError(pub String);

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lint.toml: {}", self.0)
    }
}

impl LintConfig {
    pub fn load(path: &Path) -> Result<LintConfig, ConfigError> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| ConfigError(format!("cannot read {}: {e}", path.display())))?;
        Self::parse(&text)
    }

    pub fn parse(text: &str) -> Result<LintConfig, ConfigError> {
        let mut cfg = LintConfig::default();
        let mut section = String::new();
        let mut lines = text.lines().enumerate().peekable();
        while let Some((idx, raw)) = lines.next() {
            let line = strip_comment(raw).trim().to_string();
            if line.is_empty() {
                continue;
            }
            if let Some(name) = header(&line, "[[", "]]") {
                section = name.to_string();
                if section == "hot" {
                    cfg.hot.push(HotFile::default());
                } else if section == "pool" {
                    cfg.pool.push(HotFile::default());
                } else if section == "untrusted" {
                    cfg.untrusted.push(UntrustedFile::default());
                } else if section == "wire" {
                    cfg.wire.push(WirePair::default());
                }
                continue;
            }
            if let Some(name) = header(&line, "[", "]") {
                section = name.to_string();
                continue;
            }
            let Some(eq) = line.find('=') else {
                return Err(ConfigError(format!(
                    "line {}: expected `key = value`",
                    idx + 1
                )));
            };
            let key = line[..eq].trim().to_string();
            let mut value_text = line[eq + 1..].trim().to_string();
            // A multiline array: keep consuming lines until brackets balance
            // (bracket characters inside quoted strings don't count).
            while !balanced(&value_text) {
                match lines.next() {
                    Some((_, next)) => {
                        value_text.push(' ');
                        value_text.push_str(strip_comment(next).trim());
                    }
                    None => {
                        return Err(ConfigError(format!(
                            "line {}: unterminated array for key `{key}`",
                            idx + 1
                        )))
                    }
                }
            }
            let value = parse_value(&value_text)
                .ok_or_else(|| ConfigError(format!("line {}: bad value for `{key}`", idx + 1)))?;
            cfg.assign(&section, &key, value, idx + 1)?;
        }
        Ok(cfg)
    }

    fn assign(
        &mut self,
        section: &str,
        key: &str,
        value: Value,
        line: usize,
    ) -> Result<(), ConfigError> {
        let err = |what: &str| ConfigError(format!("line {line}: {what}"));
        let want_str = |v: &Value| {
            v.as_str()
                .map(str::to_string)
                .ok_or_else(|| err("expected a string"))
        };
        let want_list = |v: &Value| {
            v.as_str_list()
                .ok_or_else(|| err("expected a string array"))
        };
        match (section, key) {
            ("", "exclude") => self.exclude = want_list(&value)?,
            ("hot", "file") => {
                let entry = self
                    .hot
                    .last_mut()
                    .ok_or_else(|| err("no [[hot]] entry open"))?;
                entry.file = want_str(&value)?;
            }
            ("hot", "roots") => {
                let entry = self
                    .hot
                    .last_mut()
                    .ok_or_else(|| err("no [[hot]] entry open"))?;
                entry.roots = want_list(&value)?;
            }
            ("hot", "functions") => {
                return Err(err(
                    "[[hot]] `functions` lists were replaced by `roots`: the analyzer now \
                     computes reachable hot functions transitively over the workspace call \
                     graph. Declare only the entry points (e.g. roots = [\"Simulator::feed\"]) \
                     and delete the exhaustive function list — see docs/LINTS.md",
                ))
            }
            ("pool", "file") => {
                let entry = self
                    .pool
                    .last_mut()
                    .ok_or_else(|| err("no [[pool]] entry open"))?;
                entry.file = want_str(&value)?;
            }
            ("pool", "roots") => {
                let entry = self
                    .pool
                    .last_mut()
                    .ok_or_else(|| err("no [[pool]] entry open"))?;
                entry.roots = want_list(&value)?;
            }
            ("untrusted", "file") => {
                let entry = self
                    .untrusted
                    .last_mut()
                    .ok_or_else(|| err("no [[untrusted]] entry open"))?;
                entry.file = want_str(&value)?;
            }
            ("untrusted", "roots") => {
                let entry = self
                    .untrusted
                    .last_mut()
                    .ok_or_else(|| err("no [[untrusted]] entry open"))?;
                entry.roots = want_list(&value)?;
            }
            ("untrusted", "sanitizers") => {
                let entry = self
                    .untrusted
                    .last_mut()
                    .ok_or_else(|| err("no [[untrusted]] entry open"))?;
                entry.sanitizers = want_list(&value)?;
            }
            ("wire", "kind") => {
                let entry = self
                    .wire
                    .last_mut()
                    .ok_or_else(|| err("no [[wire]] entry open"))?;
                let kind = want_str(&value)?;
                if kind != "json" && kind != "record" {
                    return Err(err("wire `kind` must be \"json\" or \"record\""));
                }
                entry.kind = kind;
            }
            ("wire", "writer_file") => {
                let entry = self
                    .wire
                    .last_mut()
                    .ok_or_else(|| err("no [[wire]] entry open"))?;
                entry.writer_file = want_str(&value)?;
            }
            ("wire", "writers") => {
                let entry = self
                    .wire
                    .last_mut()
                    .ok_or_else(|| err("no [[wire]] entry open"))?;
                entry.writers = want_list(&value)?;
            }
            ("wire", "reader_file") => {
                let entry = self
                    .wire
                    .last_mut()
                    .ok_or_else(|| err("no [[wire]] entry open"))?;
                entry.reader_file = want_str(&value)?;
            }
            ("wire", "readers") => {
                let entry = self
                    .wire
                    .last_mut()
                    .ok_or_else(|| err("no [[wire]] entry open"))?;
                entry.readers = want_list(&value)?;
            }
            ("wire", "structs") => {
                let entry = self
                    .wire
                    .last_mut()
                    .ok_or_else(|| err("no [[wire]] entry open"))?;
                entry.structs = want_list(&value)?;
            }
            ("checkpoint", "writer") => self.checkpoint.writer = want_str(&value)?,
            ("checkpoint", "reader") => self.checkpoint.reader = want_str(&value)?,
            ("stats", "file") => self.stats.file = want_str(&value)?,
            ("stats", "structs") => self.stats.structs = want_list(&value)?,
            ("stats", "read_scope") => self.stats.read_scope = want_list(&value)?,
            ("config_coverage", "file") => self.config_coverage.file = want_str(&value)?,
            ("config_coverage", "struct") => self.config_coverage.struct_name = want_str(&value)?,
            ("config_coverage", "used_in") => self.config_coverage.used_in = want_list(&value)?,
            ("trace_format", "packed_file") => self.trace_format.packed_file = want_str(&value)?,
            ("trace_format", "codec_file") => self.trace_format.codec_file = want_str(&value)?,
            ("trace_format", "struct") => self.trace_format.struct_name = want_str(&value)?,
            ("trace_format", "version_const") => {
                self.trace_format.version_const = want_str(&value)?
            }
            ("trace_format", "record") => self.trace_format.record = want_str(&value)?,
            ("narrowing", "files") => self.narrowing_files = want_list(&value)?,
            ("determinism", "files") => self.determinism_files = want_list(&value)?,
            ("units", "files") => self.units_files = want_list(&value)?,
            _ => {
                return Err(err(&format!(
                    "unknown key `{key}` in section `[{section}]`"
                )))
            }
        }
        Ok(())
    }
}

fn header<'a>(line: &'a str, open: &str, close: &str) -> Option<&'a str> {
    let inner = line.strip_prefix(open)?.strip_suffix(close)?;
    // `[[x]]` also matches the `[`/`]` pattern, so reject leftover brackets.
    if inner.contains('[') || inner.contains(']') {
        None
    } else {
        Some(inner.trim())
    }
}

/// Strip a `#` comment, respecting `#` inside quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut prev_backslash = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' if !prev_backslash => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
        prev_backslash = c == '\\' && !prev_backslash;
    }
    line
}

/// True when every `[` outside a string has a matching `]`.
fn balanced(text: &str) -> bool {
    let mut depth = 0i32;
    let mut in_str = false;
    let mut prev_backslash = false;
    for c in text.chars() {
        match c {
            '"' if !prev_backslash => in_str = !in_str,
            '[' if !in_str => depth += 1,
            ']' if !in_str => depth -= 1,
            _ => {}
        }
        prev_backslash = c == '\\' && !prev_backslash;
    }
    depth == 0 && !in_str
}

fn parse_value(text: &str) -> Option<Value> {
    let mut chars: Vec<char> = text.chars().collect();
    // Drop trailing commas so `"a", ` parses after array splitting.
    while matches!(chars.last(), Some(c) if c.is_whitespace() || *c == ',') {
        chars.pop();
    }
    let (value, rest) = parse_one(&chars, 0)?;
    if chars[rest..].iter().all(|c| c.is_whitespace()) {
        Some(value)
    } else {
        None
    }
}

fn parse_one(chars: &[char], mut i: usize) -> Option<(Value, usize)> {
    while i < chars.len() && chars[i].is_whitespace() {
        i += 1;
    }
    match chars.get(i)? {
        '"' => {
            let mut s = String::new();
            i += 1;
            while i < chars.len() {
                match chars[i] {
                    '\\' if i + 1 < chars.len() => {
                        s.push(chars[i + 1]);
                        i += 2;
                    }
                    '"' => return Some((Value::Str(s), i + 1)),
                    c => {
                        s.push(c);
                        i += 1;
                    }
                }
            }
            None
        }
        '[' => {
            let mut items = Vec::new();
            i += 1;
            loop {
                while i < chars.len() && (chars[i].is_whitespace() || chars[i] == ',') {
                    i += 1;
                }
                match chars.get(i) {
                    Some(']') => return Some((Value::List(items), i + 1)),
                    Some(_) => {
                        let (v, next) = parse_one(chars, i)?;
                        items.push(v);
                        i = next;
                    }
                    None => return None,
                }
            }
        }
        c if c.is_ascii_digit() || *c == '-' => {
            let start = i;
            i += 1;
            while i < chars.len() && (chars[i].is_ascii_digit() || chars[i] == '_') {
                i += 1;
            }
            let s: String = chars[start..i].iter().filter(|c| **c != '_').collect();
            s.parse().ok().map(|v| (Value::Int(v), i))
        }
        _ => {
            let start = i;
            while i < chars.len() && chars[i].is_alphanumeric() {
                i += 1;
            }
            match chars[start..i].iter().collect::<String>().as_str() {
                "true" => Some((Value::Bool(true), i)),
                "false" => Some((Value::Bool(false), i)),
                _ => None,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_shape() {
        let text = r##"
# comment
exclude = ["target", "vendor"]

[[hot]]
file = "crates/core/src/sim.rs"
roots = [
    "Simulator::feed", # trailing comment
    "advance_to",
]

[[hot]]
file = "crates/mem/src/mshr.rs"
roots = ["MshrFile::probe"]

[[pool]]
file = "crates/bench/src/harness.rs"
roots = ["drain_worker"]

[checkpoint]
writer = "SnapshotWriter"
reader = "SnapshotReader"

[stats]
file = "crates/core/src/stats.rs"
structs = ["SimStats"]
read_scope = ["crates", "tests"]

[config_coverage]
file = "crates/core/src/config.rs"
struct = "MachineConfig"
used_in = ["crates/bench/src"]

[trace_format]
packed_file = "crates/isa/src/packed.rs"
codec_file = "crates/isa/src/codec.rs"
struct = "PackedOp"
version_const = "TRACE_FORMAT_VERSION"
record = "crates/isa/trace_format.fp"

[narrowing]
files = ["crates/isa/src/codec.rs"]

[determinism]
files = ["crates/core/src/sim.rs"]

[units]
files = ["crates/core"]

[[untrusted]]
file = "crates/serve/src/json.rs"
roots = ["Json::parse"]
sanitizers = ["QueryRequest::from_json_str"]

[[wire]]
kind = "json"
writer_file = "crates/serve/src/proto.rs"
writers = ["ResponseLine::to_json"]
reader_file = "crates/bench/src/bin/serve_baseline.rs"
readers = ["read_response"]

[[wire]]
kind = "record"
writer_file = "crates/serve/src/store.rs"
writers = ["encode_payload"]
reader_file = "crates/serve/src/store.rs"
readers = ["decode_payload"]
structs = ["SampledCell"]
"##;
        let cfg = LintConfig::parse(text).unwrap();
        assert_eq!(cfg.exclude, vec!["target", "vendor"]);
        assert_eq!(cfg.hot.len(), 2);
        assert_eq!(cfg.hot[0].roots, vec!["Simulator::feed", "advance_to"]);
        assert_eq!(cfg.hot[1].file, "crates/mem/src/mshr.rs");
        assert_eq!(cfg.pool.len(), 1);
        assert_eq!(cfg.pool[0].roots, vec!["drain_worker"]);
        assert_eq!(cfg.checkpoint.writer, "SnapshotWriter");
        assert_eq!(cfg.checkpoint.reader, "SnapshotReader");
        assert_eq!(cfg.stats.structs, vec!["SimStats"]);
        assert_eq!(cfg.config_coverage.struct_name, "MachineConfig");
        assert_eq!(cfg.trace_format.record, "crates/isa/trace_format.fp");
        assert_eq!(cfg.narrowing_files.len(), 1);
        assert_eq!(cfg.determinism_files, vec!["crates/core/src/sim.rs"]);
        assert_eq!(cfg.units_files, vec!["crates/core"]);
        assert_eq!(cfg.untrusted.len(), 1);
        assert_eq!(cfg.untrusted[0].roots, vec!["Json::parse"]);
        assert_eq!(
            cfg.untrusted[0].sanitizers,
            vec!["QueryRequest::from_json_str"]
        );
        assert_eq!(cfg.wire.len(), 2);
        assert_eq!(cfg.wire[0].kind, "json");
        assert_eq!(cfg.wire[0].readers, vec!["read_response"]);
        assert_eq!(cfg.wire[1].kind, "record");
        assert_eq!(cfg.wire[1].structs, vec!["SampledCell"]);
    }

    #[test]
    fn wire_kind_is_validated() {
        let err = LintConfig::parse("[[wire]]\nkind = \"xml\"\n")
            .expect_err("unsupported wire kinds must be rejected");
        assert!(err.to_string().contains("json"), "{err}");
    }

    #[test]
    fn rejects_unknown_keys() {
        assert!(LintConfig::parse("bogus = 3").is_err());
    }

    #[test]
    fn legacy_functions_key_gets_a_migration_error() {
        let err = LintConfig::parse("[[hot]]\nfile = \"a.rs\"\nfunctions = [\"feed\"]\n")
            .expect_err("legacy schema must be rejected, not ignored");
        assert!(err.to_string().contains("roots"), "{err}");
        assert!(err.to_string().contains("transitively"), "{err}");
    }
}
