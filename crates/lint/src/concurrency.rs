//! Concurrency rules: lock-order inversion (L011), suspicious atomic
//! orderings (L012), and blocking calls in pool worker loops (L013).
//!
//! All three consume the lock/atomic/blocking events recorded by
//! [`crate::facts`] plus the workspace [`Graph`]. The lock-order graph is
//! built over *lock labels* (`Type.field` for self fields, `fn::local`
//! for let-bound guards, `path::STATIC` for statics) rather than lock
//! objects — two statics with the same name in different files alias,
//! a documented imprecision that errs toward reporting.

use std::collections::{HashMap, HashSet};

use crate::config::LintConfig;
use crate::facts::Event;
use crate::graph::{path_matches, FnId, Graph};
use crate::{Finding, Workspace};

pub fn run(ws: &Workspace, cfg: &LintConfig, g: &Graph, out: &mut Vec<Finding>) {
    lock_order(g, out);
    atomic_orderings(g, out);
    pool_blocking(ws, cfg, g, out);
}

fn finding(file: &str, line: u32, rule: &'static str, msg: String) -> Finding {
    Finding {
        file: file.to_string(),
        line,
        rule,
        msg,
    }
}

fn non_test_fns(g: &Graph) -> Vec<FnId> {
    let mut out = Vec::new();
    for (fi, (_, facts)) in g.files.iter().enumerate() {
        for (ki, f) in facts.fns.iter().enumerate() {
            if !f.in_test {
                out.push((fi, ki));
            }
        }
    }
    out
}

// ------------------------------------------------------------------- L011

/// One directed lock-order edge: `held` was live while `acquired` was
/// taken at `site`.
struct LockSite {
    file: String,
    line: u32,
    qual: String,
}

fn lock_order(g: &Graph, out: &mut Vec<Finding>) {
    let fns = non_test_fns(g);
    // Direct acquisitions per fn, for importing edges through calls.
    let direct: HashMap<FnId, Vec<String>> = fns
        .iter()
        .map(|&id| {
            let labels = g
                .fn_facts(id)
                .events
                .iter()
                .filter_map(|ev| match ev {
                    Event::Lock { label, .. } => Some(label.clone()),
                    _ => None,
                })
                .collect();
            (id, labels)
        })
        .collect();
    let mut closure_memo: HashMap<FnId, Vec<String>> = HashMap::new();
    let mut edges: HashMap<(String, String), LockSite> = HashMap::new();
    for &id in &fns {
        let f = g.fn_facts(id);
        let site = |line: u32| LockSite {
            file: g.rel(id).to_string(),
            line,
            qual: f.qual_name(),
        };
        for ev in &f.events {
            match ev {
                Event::LockEdge {
                    held,
                    acquired,
                    line,
                } if held != acquired => {
                    edges
                        .entry((held.clone(), acquired.clone()))
                        .or_insert_with(|| site(*line));
                }
                Event::LockedCall { held, line } => {
                    // Import the transitive acquisition set of every call
                    // resolved at this line as edges from `held`.
                    for call in f.calls.iter().filter(|c| c.line() == *line) {
                        for callee in g.resolve_call(call, id) {
                            for label in transitive_locks(g, callee, &direct, &mut closure_memo) {
                                if label != *held {
                                    edges
                                        .entry((held.clone(), label))
                                        .or_insert_with(|| site(*line));
                                }
                            }
                        }
                    }
                }
                _ => {}
            }
        }
    }
    // Adjacency over labels.
    let mut adj: HashMap<&str, Vec<&str>> = HashMap::new();
    for (a, b) in edges.keys() {
        adj.entry(a).or_default().push(b);
    }
    // For each edge a -> b, a path b ~> a closes an inversion cycle.
    let mut keys: Vec<&(String, String)> = edges.keys().collect();
    keys.sort();
    let mut reported: HashSet<Vec<String>> = HashSet::new();
    for (a, b) in keys {
        let Some(path) = label_path(&adj, b, a) else {
            continue;
        };
        // Full cycle: a -> b -> ... -> a.
        let mut cycle = vec![a.clone()];
        cycle.extend(path.iter().map(|s| s.to_string()));
        let mut canon: Vec<String> = cycle.clone();
        canon.sort();
        canon.dedup();
        if !reported.insert(canon) {
            continue;
        }
        let mut msg = format!("lock-order inversion: {}", cycle.join(" -> "));
        for pair in cycle.windows(2) {
            if let Some(s) = edges.get(&(pair[0].clone(), pair[1].clone())) {
                msg.push_str(&format!(
                    "; `{}` held while acquiring `{}` in `{}` ({}:{})",
                    pair[0], pair[1], s.qual, s.file, s.line
                ));
            }
        }
        msg.push_str(" — pick one global order and acquire both locks in it everywhere");
        let s = &edges[&(a.clone(), b.clone())];
        out.push(finding(&s.file, s.line, "L011", msg));
    }
}

/// Every lock label acquired by `id` or anything it transitively calls.
fn transitive_locks(
    g: &Graph,
    id: FnId,
    direct: &HashMap<FnId, Vec<String>>,
    memo: &mut HashMap<FnId, Vec<String>>,
) -> Vec<String> {
    if let Some(hit) = memo.get(&id) {
        return hit.clone();
    }
    let mut seen = HashSet::new();
    let mut labels = Vec::new();
    let mut queue = vec![id];
    seen.insert(id);
    while let Some(cur) = queue.pop() {
        for l in direct.get(&cur).into_iter().flatten() {
            if !labels.contains(l) {
                labels.push(l.clone());
            }
        }
        for next in g.callees(cur) {
            if seen.insert(next) {
                queue.push(next);
            }
        }
    }
    labels.sort();
    memo.insert(id, labels.clone());
    labels
}

/// BFS over the label digraph; returns the node path `from ~> to`
/// (inclusive of both endpoints) if one exists.
fn label_path<'g>(
    adj: &HashMap<&'g str, Vec<&'g str>>,
    from: &'g str,
    to: &str,
) -> Option<Vec<&'g str>> {
    let mut parent: HashMap<&str, &str> = HashMap::new();
    let mut queue = vec![from];
    parent.insert(from, from);
    let mut qi = 0;
    while qi < queue.len() {
        let cur = queue[qi];
        qi += 1;
        if cur == to {
            let mut path = vec![cur];
            let mut walk = cur;
            while parent[walk] != walk {
                walk = parent[walk];
                path.push(walk);
            }
            path.reverse();
            return Some(path);
        }
        for &next in adj.get(cur).into_iter().flatten() {
            if !parent.contains_key(next) {
                parent.insert(next, cur);
                queue.push(next);
            }
        }
    }
    None
}

// ------------------------------------------------------------------- L012

struct AtomicUse {
    op: String,
    ordering: String,
    in_spawn: bool,
    file: String,
    line: u32,
    qual: String,
}

fn atomic_orderings(g: &Graph, out: &mut Vec<Finding>) {
    let mut by_label: HashMap<String, Vec<AtomicUse>> = HashMap::new();
    for id in non_test_fns(g) {
        let f = g.fn_facts(id);
        for ev in &f.events {
            if let Event::Atomic {
                label,
                op,
                ordering,
                in_spawn,
                line,
            } = ev
            {
                by_label.entry(label.clone()).or_default().push(AtomicUse {
                    op: op.clone(),
                    ordering: ordering.clone(),
                    in_spawn: *in_spawn,
                    file: g.rel(id).to_string(),
                    line: *line,
                    qual: f.qual_name(),
                });
            }
        }
    }
    let mut labels: Vec<&String> = by_label.keys().collect();
    labels.sort();
    for label in labels {
        let uses = &by_label[label];
        let stores: Vec<&AtomicUse> = uses.iter().filter(|u| u.op == "store").collect();
        let loads: Vec<&AtomicUse> = uses.iter().filter(|u| u.op == "load").collect();
        // RMW-only targets (fetch_add counters, compare_exchange state
        // machines) carry their ordering on the RMW itself — never flagged.
        if stores.is_empty() {
            continue;
        }
        let strong_store = stores
            .iter()
            .find(|u| u.ordering == "Release" || u.ordering == "SeqCst");
        let relaxed_load = loads.iter().find(|u| u.ordering == "Relaxed");
        let relaxed_store = stores.iter().find(|u| u.ordering == "Relaxed");
        let strong_load = loads
            .iter()
            .find(|u| u.ordering == "Acquire" || u.ordering == "SeqCst");
        if let (Some(s), Some(l)) = (strong_store, relaxed_load) {
            out.push(finding(
                &l.file,
                l.line,
                "L012",
                format!(
                    "atomic `{label}` is stored with {} in `{}` ({}:{}) but loaded with Relaxed \
                     in `{}` — the Relaxed load does not synchronize-with the store, so writes \
                     published before it may not be visible; load with Acquire",
                    s.ordering, s.qual, s.file, s.line, l.qual
                ),
            ));
        } else if let (Some(s), Some(l)) = (relaxed_store, strong_load) {
            out.push(finding(
                &s.file,
                s.line,
                "L012",
                format!(
                    "atomic `{label}` is loaded with {} in `{}` ({}:{}) but stored with Relaxed \
                     in `{}` — an Acquire load only synchronizes with a Release store; store \
                     with Release",
                    l.ordering, l.qual, l.file, l.line, s.qual
                ),
            ));
        } else if stores.iter().all(|u| u.ordering == "Relaxed")
            && !loads.is_empty()
            && loads.iter().all(|u| u.ordering == "Relaxed")
            && uses.iter().any(|u| u.in_spawn)
            && uses.iter().any(|u| !u.in_spawn)
        {
            let s = stores[0];
            out.push(finding(
                &s.file,
                s.line,
                "L012",
                format!(
                    "atomic `{label}` crosses a spawn boundary with Relaxed on every store and \
                     load — if it guards non-atomic data, readers can observe the flag without \
                     the data; use Release on the store and Acquire on the load (a pure counter \
                     should use `fetch_add`, which L012 never flags)"
                ),
            ));
        }
    }
}

// ------------------------------------------------------------------- L013

fn pool_blocking(ws: &Workspace, cfg: &LintConfig, g: &Graph, out: &mut Vec<Finding>) {
    let mut roots = Vec::new();
    for pool in &cfg.pool {
        if !ws
            .files
            .iter()
            .any(|(rel, _)| path_matches(rel, &pool.file))
        {
            out.push(finding(
                &pool.file,
                0,
                "L013",
                "pool file declared in lint.toml was not found in the workspace".to_string(),
            ));
            continue;
        }
        for root in &pool.roots {
            let ids = g.find_root(&pool.file, root);
            if ids.is_empty() {
                out.push(finding(
                    &pool.file,
                    0,
                    "L013",
                    format!(
                        "pool root `{root}` declared in lint.toml does not exist in this file — \
                         update lint.toml"
                    ),
                ));
            }
            roots.extend(ids);
        }
    }
    if roots.is_empty() {
        return;
    }
    let parent = g.reach(&roots);
    let mut ids: Vec<FnId> = parent.keys().copied().collect();
    ids.sort_unstable();
    for id in ids {
        let f = g.fn_facts(id);
        let chain = g.chain_to(&parent, id);
        let prov = if chain.len() <= 1 {
            "declared pool root".to_string()
        } else {
            format!("in pool loop via {}", chain.join(" -> "))
        };
        for ev in &f.events {
            if let Event::Blocking { what, line } = ev {
                out.push(finding(
                    g.rel(id),
                    *line,
                    "L013",
                    format!(
                        "`{what}` can block inside `{}` ({prov}) — a stalled worker idles its \
                         core for the whole sweep; hoist the call out of the drain loop or \
                         hand it to a dedicated thread",
                        f.qual_name()
                    ),
                ));
            }
        }
    }
}
