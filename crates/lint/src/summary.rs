//! The interprocedural "deep" phase: function summaries and the taint
//! worklist.
//!
//! Phase order inside one analyzer run:
//!
//! 1. **Dependency hashes.** Each file's deep results are valid for a
//!    hash folding its own content with the content of every file it
//!    (transitively) calls into, so editing a leaf invalidates the deep
//!    cache of all its callers without touching their per-file facts.
//! 2. **Summary fixpoint.** Files whose dependency hash changed are
//!    re-parsed and every function gets a [`FnSummary`] — the joined
//!    return interval from the range analysis and the parameter→return
//!    taint mask — computed callee-first over the call graph, iterating
//!    a bounded number of passes so cycles settle. L010's arithmetic
//!    risks are recomputed in the same walk with callee summaries in
//!    scope (a call to a function proven to return `[0, 7]` no longer
//!    widens to top).
//! 3. **Taint worklist.** Functions named under `[[untrusted]]` in
//!    `lint.toml` seed a forward worklist: their parameters are
//!    attacker-controlled. Taint flows into callees through arguments,
//!    and back to callers of any function whose return value is
//!    (transitively) derived from untrusted input. A final walk over
//!    every reached function records the L015 sink hits with their
//!    source chains. Taint results are *not* cached: they depend on a
//!    function's callers, which the callee-directed dependency hash
//!    deliberately does not cover.

use std::collections::{HashMap, HashSet, VecDeque};

use crate::ast::{PFn, ParsedFile};
use crate::cache::Cache;
use crate::config::LintConfig;
use crate::dataflow::{arith_risks_with, Interval};
use crate::facts::Event;
use crate::graph::{FnId, Graph};
use crate::taint::{self, param_bit, CallModel, ROOT_BIT};
use crate::{fnv1a64, Workspace};

/// Per-function interprocedural summary.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FnSummary {
    /// Joined interval of all bounded return paths; `None` when the
    /// function does not return a bare integer or nothing was provable.
    pub ret: Option<Interval>,
    /// Bit *i* set when parameter *i* may flow into the return value.
    pub ret_taint: u64,
}

/// Deep (interprocedural) results for one function.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FnDeep {
    pub summary: FnSummary,
    /// L010 arithmetic risks computed with callee summaries in scope.
    pub ariths: Vec<(String, u32)>,
}

/// Deep results for one file, cache-persisted next to its facts.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DeepFacts {
    /// FNV over the sorted `(path, content hash)` set of this file and
    /// every file reachable from it through resolved call edges.
    pub dep_hash: u64,
    /// Index-aligned with `FileFacts::fns`.
    pub fns: Vec<FnDeep>,
}

/// One L015 finding before rule packaging: `(file, line, message)`.
pub type TaintFinding = (String, u32, String);

/// Resolved call sites of one function: `(callee name, line)` → targets.
type SiteMap = HashMap<(String, u32), Vec<FnId>>;

/// Run the deep phase over a loaded workspace: recompute stale
/// summaries, merge the interprocedural L010 events into the in-memory
/// facts, run the taint worklist into `ws.taints`, and persist fresh
/// deep results into `cache`.
pub fn deep_phase(ws: &mut Workspace, cfg: &LintConfig, cache: Option<&mut Cache>) {
    let n = ws.files.len();
    let hashes: Vec<u64> = ws.srcs.iter().map(|s| fnv1a64(s.as_bytes())).collect();

    let mut fresh: HashMap<usize, DeepFacts> = HashMap::new();
    let mut taints: Vec<TaintFinding> = Vec::new();
    {
        let g = Graph::new(&ws.files, ws.extern_lines());

        // Resolve every call site once: per fn, `(name, line)` → targets.
        let mut sites: Vec<Vec<SiteMap>> = Vec::with_capacity(n);
        let mut file_callees: Vec<HashSet<usize>> = vec![HashSet::new(); n];
        for (fi, (_, facts)) in ws.files.iter().enumerate() {
            let mut per_file = Vec::new();
            for (j, f) in facts.fns.iter().enumerate() {
                let mut m: SiteMap = HashMap::new();
                for c in &f.calls {
                    let targets = g.resolve_call(c, (fi, j));
                    for t in &targets {
                        if t.0 != fi && !f.in_test {
                            file_callees[fi].insert(t.0);
                        }
                    }
                    m.entry((c.name().to_string(), c.line()))
                        .or_default()
                        .extend(targets);
                }
                for v in m.values_mut() {
                    v.sort_unstable();
                    v.dedup();
                }
                per_file.push(m);
            }
            sites.push(per_file);
        }

        // Dependency hash: own content + transitive callee files.
        let mut dep_hashes = vec![0u64; n];
        for (fi, dep_hash) in dep_hashes.iter_mut().enumerate() {
            let mut seen: HashSet<usize> = HashSet::new();
            seen.insert(fi);
            let mut stack = vec![fi];
            while let Some(f) = stack.pop() {
                for &c in &file_callees[f] {
                    if seen.insert(c) {
                        stack.push(c);
                    }
                }
            }
            let mut reach: Vec<usize> = seen.into_iter().collect();
            reach.sort_unstable();
            let mut acc = String::new();
            for r in reach {
                acc.push_str(&ws.files[r].0);
                acc.push(' ');
                acc.push_str(&hashes[r].to_string());
                acc.push('\n');
            }
            *dep_hash = fnv1a64(acc.as_bytes());
        }

        let dirty: Vec<bool> = (0..n)
            .map(|fi| match &ws.deeps[fi] {
                Some(d) => d.dep_hash != dep_hashes[fi] || d.fns.len() != ws.files[fi].1.fns.len(),
                None => true,
            })
            .collect();

        // Untrusted roots and declared sanitizers from config.
        let mut roots: HashSet<FnId> = HashSet::new();
        let mut sanitizers: HashSet<FnId> = HashSet::new();
        for u in &cfg.untrusted {
            for r in &u.roots {
                roots.extend(g.find_root(&u.file, r));
            }
            for s in &u.sanitizers {
                sanitizers.extend(g.find_root(&u.file, s));
            }
        }

        // Files needing parsed bodies: deep-dirty ones, plus the
        // undirected call-graph closure around the untrusted roots (the
        // taint worklist flows both down into callees and up to callers
        // of untrusted-returning functions).
        let mut need_parse: Vec<bool> = dirty.clone();
        if !roots.is_empty() {
            let mut undirected: Vec<HashSet<usize>> = file_callees.clone();
            for (fi, callees) in file_callees.iter().enumerate() {
                for &c in callees {
                    undirected[c].insert(fi);
                }
            }
            let mut stack: Vec<usize> = roots.iter().map(|r| r.0).collect();
            let mut seen: HashSet<usize> = stack.iter().copied().collect();
            while let Some(f) = stack.pop() {
                need_parse[f] = true;
                for &x in &undirected[f] {
                    if seen.insert(x) {
                        stack.push(x);
                    }
                }
            }
        }
        let parsed: Vec<Option<ParsedFile>> = (0..n)
            .map(|fi| {
                if !need_parse[fi] {
                    return None;
                }
                let p = crate::parser::parse_file(&crate::lexer::lex(&ws.srcs[fi]));
                // Facts and bodies must be index-aligned; a mismatch
                // (which would mean the cache and the source disagree)
                // conservatively disables deep analysis for the file.
                (p.fns.len() == ws.files[fi].1.fns.len()).then_some(p)
            })
            .collect();
        let pfn = |id: FnId| -> Option<&PFn> { parsed[id.0].as_ref().map(|p| &p.fns[id.1]) };

        // Seed summaries from still-valid cached deep results.
        let mut summaries: HashMap<FnId, FnSummary> = HashMap::new();
        for (fi, is_dirty) in dirty.iter().enumerate() {
            if *is_dirty {
                continue;
            }
            if let Some(d) = &ws.deeps[fi] {
                for (j, df) in d.fns.iter().enumerate() {
                    summaries.insert((fi, j), df.summary);
                }
            }
        }

        // Callee-first order over the dirty functions.
        let mut kids: HashMap<FnId, Vec<FnId>> = HashMap::new();
        let mut dirty_fns: Vec<FnId> = Vec::new();
        for fi in 0..n {
            if !dirty[fi] {
                continue;
            }
            for (j, site) in sites[fi].iter().enumerate() {
                let id = (fi, j);
                dirty_fns.push(id);
                let mut ks: Vec<FnId> = site
                    .values()
                    .flatten()
                    .copied()
                    .filter(|t| dirty[t.0])
                    .collect();
                ks.sort_unstable();
                ks.dedup();
                kids.insert(id, ks);
            }
        }
        let order = post_order(&dirty_fns, &kids);

        let mut deep_fns: HashMap<FnId, FnDeep> = HashMap::new();
        for _pass in 0..3 {
            let mut changed = false;
            for &id in &order {
                let Some(f) = pfn(id) else { continue };
                let site_map = &sites[id.0][id.1];
                let ff = {
                    let oracle = |name: &str, line: u32| -> Option<Interval> {
                        let ts = site_map.get(&(name.to_string(), line))?;
                        if ts.is_empty() {
                            return None;
                        }
                        let mut acc: Option<Interval> = None;
                        for t in ts {
                            let r = summaries.get(t)?.ret?;
                            acc = Some(match acc {
                                Some(a) => a.join(r),
                                None => r,
                            });
                        }
                        acc
                    };
                    arith_risks_with(f, &oracle)
                };
                let rt = {
                    let mut model = SummaryModel {
                        sites: site_map,
                        summaries: &summaries,
                    };
                    taint::ret_taint_of(f, &mut model)
                };
                let new = FnDeep {
                    summary: FnSummary {
                        ret: ff.ret,
                        ret_taint: rt,
                    },
                    ariths: ff.risks,
                };
                if deep_fns.get(&id).map(|p| p.summary) != Some(new.summary) {
                    changed = true;
                }
                summaries.insert(id, new.summary);
                deep_fns.insert(id, new);
            }
            if !changed {
                break;
            }
        }
        for fi in 0..n {
            if !dirty[fi] || parsed[fi].is_none() {
                continue;
            }
            let fns = (0..ws.files[fi].1.fns.len())
                .map(|j| deep_fns.remove(&(fi, j)).unwrap_or_default())
                .collect();
            fresh.insert(
                fi,
                DeepFacts {
                    dep_hash: dep_hashes[fi],
                    fns,
                },
            );
        }

        // ---- Taint worklist ----
        if !roots.is_empty() {
            // Reverse call edges (test callers excluded: a test feeding
            // literal input to a parser is not an attack surface).
            let mut callers: HashMap<FnId, HashSet<FnId>> = HashMap::new();
            for (fi, (_, facts)) in ws.files.iter().enumerate() {
                for (j, f) in facts.fns.iter().enumerate() {
                    if f.in_test {
                        continue;
                    }
                    for ts in sites[fi][j].values() {
                        for &t in ts {
                            callers.entry(t).or_default().insert((fi, j));
                        }
                    }
                }
            }
            let mut st = DetectState {
                tainted: HashMap::new(),
                origin: HashMap::new(),
                ret_untrusted: HashSet::new(),
                pending: Vec::new(),
            };
            let mut queue: VecDeque<FnId> = VecDeque::new();
            let mut queued: HashSet<FnId> = HashSet::new();
            let mut walked: HashSet<FnId> = HashSet::new();
            for &r in &roots {
                let nparams = ws.files[r.0].1.fns[r.1].params.len();
                let mask = (0..nparams).fold(0u64, |a, i| a | param_bit(i));
                st.tainted.insert(r, mask);
                if queued.insert(r) {
                    queue.push_back(r);
                }
            }
            let mut steps = 0usize;
            while let Some(id) = queue.pop_front() {
                queued.remove(&id);
                steps += 1;
                if steps > 50_000 {
                    break;
                }
                if ws.files[id.0].1.fns[id.1].in_test {
                    continue;
                }
                let Some(f) = pfn(id) else { continue };
                walked.insert(id);
                let tmask = st.tainted.get(&id).copied().unwrap_or(0);
                let live = tmask | ROOT_BIT;
                let masks: Vec<u64> = (0..f.params.len()).map(|i| param_bit(i) & tmask).collect();
                let out = {
                    let mut model = DetectModel {
                        sites: &sites[id.0][id.1],
                        summaries: &summaries,
                        st: &mut st,
                        sanitizers: &sanitizers,
                        live,
                        caller: id,
                    };
                    taint::run(f, &masks, live, &mut model)
                };
                // A function *returns untrusted input* only when its
                // return value acquires taint internally — it is a
                // declared root, or it calls one (ROOT_BIT). A return
                // merely derived from the function's own parameters is
                // context-dependent and already applied per call site
                // through the summary's `ret_taint` mask; flagging it
                // globally would poison call sites with clean arguments.
                let ret_untrusted =
                    out.ret & ROOT_BIT != 0 || (roots.contains(&id) && out.ret & live != 0);
                if ret_untrusted && std::env::var("LINT_TAINT_DEBUG").is_ok() {
                    eprintln!(
                        "RET_UNTRUSTED {}:{} tmask={:#x}",
                        ws.files[id.0].0,
                        ws.files[id.0].1.fns[id.1].qual_name(),
                        tmask
                    );
                }
                if ret_untrusted && st.ret_untrusted.insert(id) {
                    if let Some(cs) = callers.get(&id) {
                        for &c in cs {
                            if queued.insert(c) {
                                queue.push_back(c);
                            }
                        }
                    }
                }
                for t in std::mem::take(&mut st.pending) {
                    if queued.insert(t) {
                        queue.push_back(t);
                    }
                }
            }
            // Final walk: sinks against the converged masks.
            let mut final_ids: Vec<FnId> = walked.into_iter().collect();
            final_ids.sort_unstable();
            for id in final_ids {
                let facts_fn = &ws.files[id.0].1.fns[id.1];
                let Some(f) = pfn(id) else { continue };
                let tmask = st.tainted.get(&id).copied().unwrap_or(0);
                let live = tmask | ROOT_BIT;
                let masks: Vec<u64> = (0..f.params.len()).map(|i| param_bit(i) & tmask).collect();
                let out = {
                    let mut model = DetectModel {
                        sites: &sites[id.0][id.1],
                        summaries: &summaries,
                        st: &mut st,
                        sanitizers: &sanitizers,
                        live,
                        caller: id,
                    };
                    taint::run(f, &masks, live, &mut model)
                };
                st.pending.clear();
                if out.sinks.is_empty() {
                    continue;
                }
                let src = source_desc(id, &roots, &st, &sites[id.0][id.1], ws);
                for s in out.sinks {
                    taints.push((
                        ws.files[id.0].0.clone(),
                        s.line,
                        format!(
                            "attacker-controlled value reaches {} inside `{}` — {}; bound it \
                             first: compare against a config limit and bail out, `.min`/\
                             `.clamp` it, or parse through a validated constructor",
                            s.what,
                            facts_fn.qual_name(),
                            src
                        ),
                    ));
                }
            }
        }
    }

    // ---- Merge back into the workspace ----
    for (fi, deep) in &fresh {
        ws.deeps[*fi] = Some(deep.clone());
    }
    for fi in 0..n {
        let ariths: Vec<Vec<(String, u32)>> = match &ws.deeps[fi] {
            Some(d) => d.fns.iter().map(|df| df.ariths.clone()).collect(),
            None => continue,
        };
        for (j, list) in ariths.into_iter().enumerate() {
            if j >= ws.files[fi].1.fns.len() {
                break;
            }
            for (what, line) in list {
                ws.files[fi].1.fns[j]
                    .events
                    .push(Event::Arith { what, line });
            }
        }
    }
    taints.sort();
    taints.dedup();
    ws.taints = taints;
    if let Some(c) = cache {
        for (fi, deep) in fresh {
            c.set_deep(&ws.files[fi].0, deep);
        }
    }
}

/// Iterative callee-first DFS over the dirty functions.
fn post_order(starts: &[FnId], kids: &HashMap<FnId, Vec<FnId>>) -> Vec<FnId> {
    let mut order = Vec::new();
    let mut mark: HashMap<FnId, u8> = HashMap::new();
    let empty: Vec<FnId> = Vec::new();
    for &s in starts {
        if mark.contains_key(&s) {
            continue;
        }
        let mut stack: Vec<(FnId, usize)> = vec![(s, 0)];
        mark.insert(s, 1);
        while let Some(&mut (cur, ref mut ci)) = stack.last_mut() {
            let ks = kids.get(&cur).unwrap_or(&empty);
            if *ci < ks.len() {
                let k = ks[*ci];
                *ci += 1;
                if let std::collections::hash_map::Entry::Vacant(e) = mark.entry(k) {
                    e.insert(1);
                    stack.push((k, 0));
                }
            } else {
                mark.insert(cur, 2);
                order.push(cur);
                stack.pop();
            }
        }
    }
    order
}

/// Human description of where a function's taint comes from.
fn source_desc(
    id: FnId,
    roots: &HashSet<FnId>,
    st: &DetectState,
    sites: &HashMap<(String, u32), Vec<FnId>>,
    ws: &Workspace,
) -> String {
    let qual = |f: FnId| ws.files[f.0].1.fns[f.1].qual_name();
    if roots.contains(&id) {
        return format!("`{}` is an `[[untrusted]]` input root", qual(id));
    }
    if st.tainted.get(&id).copied().unwrap_or(0) != 0 {
        // Follow discovery parents back toward a root.
        let mut path = vec![id];
        let mut cur = id;
        let mut hops = 0;
        while let Some(&p) = st.origin.get(&cur) {
            if p == cur || hops > 32 {
                break;
            }
            path.push(p);
            cur = p;
            hops += 1;
            if roots.contains(&p) {
                break;
            }
        }
        path.reverse();
        let chain: Vec<String> = path.iter().map(|&f| qual(f)).collect();
        return format!("its arguments are tainted via `{}`", chain.join(" -> "));
    }
    // Taint arrived through the return value of an untrusted-returning
    // callee; name the first such call site.
    let mut names: Vec<&str> = Vec::new();
    for ((name, _), ts) in sites {
        if ts.iter().any(|t| st.ret_untrusted.contains(t)) {
            names.push(name);
        }
    }
    names.sort_unstable();
    match names.first() {
        Some(nm) => format!("it holds the result of `{nm}`, which returns untrusted input"),
        None => "it handles untrusted input".to_string(),
    }
}

struct DetectState {
    /// Per-fn tainted-parameter mask.
    tainted: HashMap<FnId, u64>,
    /// Which caller first tainted each fn (witness chains).
    origin: HashMap<FnId, FnId>,
    /// Fns whose return value derives from untrusted input.
    ret_untrusted: HashSet<FnId>,
    /// Fns whose tainted mask grew during the current walk.
    pending: Vec<FnId>,
}

/// Call model used while computing `ret_taint` summaries: resolved
/// calls map argument masks through the callee's own summary.
struct SummaryModel<'a> {
    sites: &'a HashMap<(String, u32), Vec<FnId>>,
    summaries: &'a HashMap<FnId, FnSummary>,
}

impl CallModel for SummaryModel<'_> {
    fn call(&mut self, name: &str, line: u32, _recv: u64, args: &[u64]) -> Option<u64> {
        let ts = self.sites.get(&(name.to_string(), line))?;
        if ts.is_empty() {
            return None;
        }
        let mut out = 0u64;
        for t in ts {
            let s = self.summaries.get(t)?;
            for (k, &am) in args.iter().enumerate() {
                if s.ret_taint & param_bit(k) != 0 {
                    out |= am;
                }
            }
        }
        Some(out)
    }
}

/// Call model for the detection walk: propagates live argument taint
/// into callee parameters and reads results through summaries plus the
/// untrusted-return set.
struct DetectModel<'a> {
    sites: &'a HashMap<(String, u32), Vec<FnId>>,
    summaries: &'a HashMap<FnId, FnSummary>,
    st: &'a mut DetectState,
    sanitizers: &'a HashSet<FnId>,
    live: u64,
    caller: FnId,
}

impl CallModel for DetectModel<'_> {
    fn call(&mut self, name: &str, line: u32, _recv: u64, args: &[u64]) -> Option<u64> {
        let ts = self.sites.get(&(name.to_string(), line))?;
        if ts.is_empty() {
            return None;
        }
        let mut out = 0u64;
        for &t in ts {
            for (k, &am) in args.iter().enumerate() {
                if am & self.live != 0 {
                    let e = self.st.tainted.entry(t).or_insert(0);
                    let bit = param_bit(k);
                    if *e & bit == 0 {
                        *e |= bit;
                        self.st.origin.entry(t).or_insert(self.caller);
                        self.st.pending.push(t);
                    }
                }
            }
            // A declared sanitizer returns bounded data no matter what
            // went in; its parameters were still tainted above, so the
            // guards *inside* it remain under analysis.
            if self.sanitizers.contains(&t) {
                continue;
            }
            match self.summaries.get(&t) {
                Some(s) => {
                    for (k, &am) in args.iter().enumerate() {
                        if s.ret_taint & param_bit(k) != 0 {
                            out |= am;
                        }
                    }
                }
                None => out |= args.iter().fold(0, |a, &b| a | b),
            }
            if self.st.ret_untrusted.contains(&t) {
                out |= ROOT_BIT;
            }
        }
        Some(out)
    }
}
