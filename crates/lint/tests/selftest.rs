//! End-to-end self-test: run the analyzer over `tests/fixtures` — a mini
//! workspace with one deliberate violation per rule, each marked by a
//! `FIRE: L00x` comment on the offending line — and assert the report
//! matches the markers exactly: every rule fires where expected, nothing
//! extra fires, the reasoned pragma suppresses, and the reasonless
//! pragma is itself an L000 finding.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

fn fixtures_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

type Key = (String, u32, String);

fn collect_markers(root: &Path, dir: &Path, out: &mut BTreeSet<Key>) {
    for entry in std::fs::read_dir(dir).expect("fixtures dir") {
        let path = entry.expect("dir entry").path();
        if path.is_dir() {
            collect_markers(root, &path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            let rel = path
                .strip_prefix(root)
                .expect("under fixtures root")
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            let src = std::fs::read_to_string(&path).expect("read fixture");
            for (idx, line) in src.lines().enumerate() {
                if let Some(pos) = line.find("FIRE: ") {
                    let rule = line[pos + "FIRE: ".len()..]
                        .split_whitespace()
                        .next()
                        .expect("rule id after FIRE:");
                    out.insert((rel.clone(), (idx + 1) as u32, rule.to_string()));
                }
            }
        }
    }
}

#[test]
fn every_rule_fires_exactly_where_marked() {
    let root = fixtures_root();
    let report = aurora_lint::analyze(&root).expect("fixture analysis succeeds");
    let got: BTreeSet<Key> = report
        .findings
        .iter()
        .map(|f| (f.file.clone(), f.line, f.rule.to_string()))
        .collect();
    let mut expected = BTreeSet::new();
    collect_markers(&root, &root, &mut expected);
    let rendered: Vec<String> = report.findings.iter().map(ToString::to_string).collect();
    assert_eq!(got, expected, "actual findings:\n{}", rendered.join("\n"));
    // No two distinct findings may collapse onto one marker.
    assert_eq!(
        report.findings.len(),
        expected.len(),
        "{}",
        rendered.join("\n")
    );
    // Every rule — including the pragma-hygiene rules — is represented.
    for rule in [
        "L000", "L001", "L002", "L003", "L004", "L005", "L006", "L007", "L008", "L009", "L010",
        "L011", "L012", "L013", "L014", "L015", "L016",
    ] {
        assert!(
            expected.iter().any(|(_, _, r)| r == rule),
            "{rule} is not covered by any fixture marker"
        );
    }
}

/// Acceptance: only `root_fn` is declared in the fixture lint.toml, yet
/// the allocation in `leaf_alloc` — two calls down — fires L001 and the
/// diagnostic names the full root→leaf chain.
#[test]
fn transitive_finding_reports_the_call_chain() {
    let report = aurora_lint::analyze(&fixtures_root()).expect("fixture analysis succeeds");
    let leaf = report
        .findings
        .iter()
        .find(|f| f.file == "hot.rs" && f.rule == "L001" && f.msg.contains("leaf_alloc"))
        .expect("the leaf_alloc allocation fires");
    assert!(
        leaf.msg.contains("hot via root_fn -> mid_fn -> leaf_alloc"),
        "chain missing from message: {}",
        leaf.msg
    );
    // The L007 reached across files carries its chain too.
    let entropy = report
        .findings
        .iter()
        .find(|f| f.file == "replay_util.rs" && f.rule == "L007")
        .expect("the cross-file wall-clock read fires");
    assert!(
        entropy.msg.contains("hot via replay -> entropy"),
        "chain missing from message: {}",
        entropy.msg
    );
}

/// The machine formats must be well-formed JSON; SARIF additionally must
/// carry the whole rule catalogue so viewers can render rule metadata.
#[test]
fn sarif_and_json_outputs_are_well_formed() {
    let report = aurora_lint::analyze(&fixtures_root()).expect("fixture analysis succeeds");
    let sarif = aurora_lint::output::render_sarif(&report);
    aurora_lint::output::json_well_formed(&sarif).expect("SARIF is well-formed JSON");
    assert!(sarif.contains("\"version\": \"2.1.0\""));
    for (id, _, _) in aurora_lint::rules::RULES {
        assert!(sarif.contains(&format!("\"id\": \"{id}\"")), "{id} missing");
    }
    let json = aurora_lint::output::render_json(&report);
    aurora_lint::output::json_well_formed(&json).expect("JSON report is well-formed");
}

#[test]
fn reasoned_pragma_suppresses() {
    let report = aurora_lint::analyze(&fixtures_root()).expect("fixture analysis succeeds");
    // Exactly one finding (the unwrap in `suppressed_fn`) is covered by the
    // one well-formed pragma in hot.rs; the reasonless pragma suppresses
    // nothing and instead shows up as L000 (asserted by marker above).
    assert_eq!(report.suppressed, 1);
}

#[test]
fn explain_covers_every_rule() {
    for (id, _, _) in aurora_lint::rules::RULES {
        let text = aurora_lint::rules::explain(id).expect("explain text exists");
        assert!(
            text.starts_with(id),
            "{id} explanation must lead with its id"
        );
    }
    assert!(aurora_lint::rules::explain("L999").is_none());
}

/// The semantic rules carry their context: L010 names the chain that
/// made `unchecked_product` hot, L013 names the pool chain, and the L011
/// cycle message cites both acquisition sites of the inversion.
#[test]
fn semantic_findings_carry_their_chains() {
    let report = aurora_lint::analyze(&fixtures_root()).expect("fixture analysis succeeds");
    let find = |file: &str, rule: &str| {
        report
            .findings
            .iter()
            .find(|f| f.file == file && f.rule == rule)
            .unwrap_or_else(|| panic!("expected a {rule} finding in {file}"))
    };
    let product = report
        .findings
        .iter()
        .find(|f| f.rule == "L010" && f.msg.contains("unchecked_product"))
        .expect("the transitive product fires");
    assert!(
        product
            .msg
            .contains("hot via arith_root -> unchecked_product"),
        "chain missing from message: {}",
        product.msg
    );
    let cycle = find("locks_a.rs", "L011");
    assert!(
        cycle.msg.contains("locks_a.rs") && cycle.msg.contains("locks_b.rs"),
        "cycle must cite both acquisition sites: {}",
        cycle.msg
    );
    let blocking = find("pool.rs", "L013");
    assert!(
        blocking
            .msg
            .contains("in pool loop via fixture_drain -> step -> log_progress"),
        "pool chain missing from message: {}",
        blocking.msg
    );
    let drift = find("snap.rs", "L014");
    assert!(
        drift.msg.contains("FpQueue")
            && drift.msg.contains("scratch_head")
            && drift.msg.contains("never serializes"),
        "drift message must name struct, field and side: {}",
        drift.msg
    );
}

fn copy_tree(from: &Path, to: &Path) {
    std::fs::create_dir_all(to).expect("create copy dir");
    for entry in std::fs::read_dir(from).expect("read fixture dir") {
        let entry = entry.expect("dir entry");
        let dest = to.join(entry.file_name());
        if entry.path().is_dir() {
            copy_tree(&entry.path(), &dest);
        } else {
            std::fs::copy(entry.path(), &dest).expect("copy fixture file");
        }
    }
}

/// `--fix` round-trip: apply the mechanical pragma fixes to a copy of
/// the fixture tree until the planner runs dry, then assert the
/// pragma-hygiene rules are clean while the deliberate violations are
/// untouched. Two passes are expected: repairing a reasonless pragma can
/// expose it as stale (the CLI prints "re-run to verify" for exactly
/// this reason).
#[test]
fn fix_converges_and_clears_pragma_hygiene() {
    let dir = std::env::temp_dir().join(format!("aurora-lint-fix-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    copy_tree(&fixtures_root(), &dir);
    let mut passes = 0usize;
    loop {
        let report = aurora_lint::analyze(&dir).expect("copy analysis succeeds");
        let edits = aurora_lint::fix::plan(&dir, &report.findings).expect("plan fixes");
        if edits.is_empty() {
            break;
        }
        aurora_lint::fix::apply(&dir, &edits).expect("apply fixes");
        passes += 1;
        assert!(passes <= 3, "--fix failed to converge");
    }
    assert!(passes >= 1, "the fixture tree must need at least one fix");
    let fixed = aurora_lint::analyze(&dir).expect("fixed copy analysis succeeds");
    for f in &fixed.findings {
        assert!(
            f.rule != "L000" && f.rule != "L009",
            "pragma-hygiene finding survived --fix: {f}"
        );
    }
    // The non-mechanical violations are deliberately left alone.
    assert!(
        fixed.findings.iter().any(|f| f.rule == "L001"),
        "--fix must not touch non-pragma findings"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// The shipped tree must be clean: this is the same gate ci.sh runs, kept
/// here too so a plain `cargo test` catches new violations early.
#[test]
fn shipped_tree_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root two levels up");
    let report = aurora_lint::analyze(root).expect("workspace analysis succeeds");
    let rendered: Vec<String> = report.findings.iter().map(ToString::to_string).collect();
    assert!(
        report.findings.is_empty(),
        "workspace has lint findings:\n{}",
        rendered.join("\n")
    );
}
