//! End-to-end self-test: run the analyzer over `tests/fixtures` — a mini
//! workspace with one deliberate violation per rule, each marked by a
//! `FIRE: L00x` comment on the offending line — and assert the report
//! matches the markers exactly: every rule fires where expected, nothing
//! extra fires, the reasoned pragma suppresses, and the reasonless
//! pragma is itself an L000 finding.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

fn fixtures_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

type Key = (String, u32, String);

fn collect_markers(root: &Path, dir: &Path, out: &mut BTreeSet<Key>) {
    for entry in std::fs::read_dir(dir).expect("fixtures dir") {
        let path = entry.expect("dir entry").path();
        if path.is_dir() {
            collect_markers(root, &path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            let rel = path
                .strip_prefix(root)
                .expect("under fixtures root")
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            let src = std::fs::read_to_string(&path).expect("read fixture");
            for (idx, line) in src.lines().enumerate() {
                if let Some(pos) = line.find("FIRE: ") {
                    let rule = line[pos + "FIRE: ".len()..]
                        .split_whitespace()
                        .next()
                        .expect("rule id after FIRE:");
                    out.insert((rel.clone(), (idx + 1) as u32, rule.to_string()));
                }
            }
        }
    }
}

#[test]
fn every_rule_fires_exactly_where_marked() {
    let root = fixtures_root();
    let report = aurora_lint::analyze(&root).expect("fixture analysis succeeds");
    let got: BTreeSet<Key> = report
        .findings
        .iter()
        .map(|f| (f.file.clone(), f.line, f.rule.to_string()))
        .collect();
    let mut expected = BTreeSet::new();
    collect_markers(&root, &root, &mut expected);
    let rendered: Vec<String> = report.findings.iter().map(ToString::to_string).collect();
    assert_eq!(got, expected, "actual findings:\n{}", rendered.join("\n"));
    // No two distinct findings may collapse onto one marker.
    assert_eq!(
        report.findings.len(),
        expected.len(),
        "{}",
        rendered.join("\n")
    );
    // Every rule — including the pragma-hygiene rules — is represented.
    for rule in [
        "L000", "L001", "L002", "L003", "L004", "L005", "L006", "L007", "L008", "L009",
    ] {
        assert!(
            expected.iter().any(|(_, _, r)| r == rule),
            "{rule} is not covered by any fixture marker"
        );
    }
}

/// Acceptance: only `root_fn` is declared in the fixture lint.toml, yet
/// the allocation in `leaf_alloc` — two calls down — fires L001 and the
/// diagnostic names the full root→leaf chain.
#[test]
fn transitive_finding_reports_the_call_chain() {
    let report = aurora_lint::analyze(&fixtures_root()).expect("fixture analysis succeeds");
    let leaf = report
        .findings
        .iter()
        .find(|f| f.file == "hot.rs" && f.rule == "L001" && f.msg.contains("leaf_alloc"))
        .expect("the leaf_alloc allocation fires");
    assert!(
        leaf.msg.contains("hot via root_fn -> mid_fn -> leaf_alloc"),
        "chain missing from message: {}",
        leaf.msg
    );
    // The L007 reached across files carries its chain too.
    let entropy = report
        .findings
        .iter()
        .find(|f| f.file == "replay_util.rs" && f.rule == "L007")
        .expect("the cross-file wall-clock read fires");
    assert!(
        entropy.msg.contains("hot via replay -> entropy"),
        "chain missing from message: {}",
        entropy.msg
    );
}

/// The machine formats must be well-formed JSON; SARIF additionally must
/// carry the whole rule catalogue so viewers can render rule metadata.
#[test]
fn sarif_and_json_outputs_are_well_formed() {
    let report = aurora_lint::analyze(&fixtures_root()).expect("fixture analysis succeeds");
    let sarif = aurora_lint::output::render_sarif(&report);
    aurora_lint::output::json_well_formed(&sarif).expect("SARIF is well-formed JSON");
    assert!(sarif.contains("\"version\": \"2.1.0\""));
    for (id, _, _) in aurora_lint::rules::RULES {
        assert!(sarif.contains(&format!("\"id\": \"{id}\"")), "{id} missing");
    }
    let json = aurora_lint::output::render_json(&report);
    aurora_lint::output::json_well_formed(&json).expect("JSON report is well-formed");
}

#[test]
fn reasoned_pragma_suppresses() {
    let report = aurora_lint::analyze(&fixtures_root()).expect("fixture analysis succeeds");
    // Exactly one finding (the unwrap in `suppressed_fn`) is covered by the
    // one well-formed pragma in hot.rs; the reasonless pragma suppresses
    // nothing and instead shows up as L000 (asserted by marker above).
    assert_eq!(report.suppressed, 1);
}

#[test]
fn explain_covers_every_rule() {
    for (id, _, _) in aurora_lint::rules::RULES {
        let text = aurora_lint::rules::explain(id).expect("explain text exists");
        assert!(
            text.starts_with(id),
            "{id} explanation must lead with its id"
        );
    }
    assert!(aurora_lint::rules::explain("L999").is_none());
}

/// The shipped tree must be clean: this is the same gate ci.sh runs, kept
/// here too so a plain `cargo test` catches new violations early.
#[test]
fn shipped_tree_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root two levels up");
    let report = aurora_lint::analyze(root).expect("workspace analysis succeeds");
    let rendered: Vec<String> = report.findings.iter().map(ToString::to_string).collect();
    assert!(
        report.findings.is_empty(),
        "workspace has lint findings:\n{}",
        rendered.join("\n")
    );
}
