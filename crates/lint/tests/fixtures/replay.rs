//! L007 fixture: `replay.rs` is the fixture's [determinism] scope, so
//! everything reachable from its functions must be deterministic.

use std::collections::HashMap;

pub fn replay(m: &HashMap<u32, u32>, xs: &[u64]) -> u64 {
    let mut acc = ordered_sum(xs);
    for (_k, v) in m.iter() { // FIRE: L007 (HashMap iteration order is randomized)
        acc += u64::from(*v);
    }
    acc + entropy()
}

pub fn key_of(x: &u64) -> usize {
    x as *const u64 as usize // FIRE: L007 (pointer address observed as integer)
}

// Iterating a slice is ordered: no finding.
fn ordered_sum(xs: &[u64]) -> u64 {
    let mut acc = 0;
    for x in xs {
        acc += *x;
    }
    acc
}
