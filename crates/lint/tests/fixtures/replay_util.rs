//! Not in the [determinism] file list itself — `entropy` is flagged only
//! because `replay.rs`'s `replay` reaches it through the call graph, and
//! its diagnostic names that chain.

pub fn entropy() -> u64 {
    let now = std::time::Instant::now(); // FIRE: L007 (wall clock, reached from replay.rs)
    let _ = now;
    0
}
