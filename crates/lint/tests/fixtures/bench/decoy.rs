//! L004 regression: a same-named field on an unrelated struct must not
//! count as exercising the `Config` knob — accesses are matched by
//! receiver *type*, so `config.rs`'s `unused_knob` marker still fires
//! even though this file writes a field with the same name.

pub struct Decoy {
    pub unused_knob: u32,
}

pub fn poke(d: &mut Decoy) {
    d.unused_knob = 9;
}
