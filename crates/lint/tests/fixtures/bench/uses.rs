//! The L004 sweep scope: setting a knob counts as exercising it.

pub fn sweep(cfg: &mut Config) {
    cfg.used_knob = 7;
}
