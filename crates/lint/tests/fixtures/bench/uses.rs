//! The L004 sweep scope: setting a knob counts as exercising it, and the
//! receiver may be typed indirectly — here through the `Fn(&mut Config)`
//! signature of `apply`'s closure parameter.

pub fn sweep(cfg: &mut Config) {
    cfg.used_knob = 7;
}

pub fn apply(cfg: &mut Config, f: impl Fn(&mut Config)) {
    f(cfg);
}

pub fn sweep_with_closure(cfg: &mut Config) {
    apply(cfg, |c| {
        c.closure_knob = 3;
    });
}
