# Deliberately stale record: the hash below cannot match the computed
# fingerprint of packed.rs/codec.rs, while `version` still equals
# TRACE_FORMAT_VERSION — so the self-test sees L005's drift arm fire.
version = 1
fingerprint = 0x0123456789abcdef
