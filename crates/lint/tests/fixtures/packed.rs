//! L005 fixture: the recorded fingerprint in `trace_format.fp` is
//! deliberately stale while `TRACE_FORMAT_VERSION` in codec.rs is
//! unchanged, so the drift arm fires, anchored at the struct below.

pub struct PackedOp { // FIRE: L005 (layout drift without a version bump)
    pub a: u32,
    pub b: u16,
}
