//! L014 fixture: the statically visible shape of the FPU
//! queue-capacity restore bug — a field the restore side writes that the
//! save side never serializes. `depth` is symmetric, `capacity` is a
//! configuration bound restore only *reads* (a decoy that must stay
//! silent), and `scratch_head` is the drift.

pub struct FpQueue {
    depth: u64,
    capacity: u64,
    scratch_head: u64, // FIRE: L014 (restore-only write, never saved)
}

impl FpQueue {
    pub fn save(&self, w: &mut SnapWriter) {
        w.put_u64(self.depth);
    }

    pub fn restore(&mut self, r: &mut SnapReader) -> Result<(), SnapError> {
        self.depth = r.u64()?;
        // Capacity is configuration: cross-checked as a bound, not
        // deserialized. Reads must not count as restore coverage.
        if self.depth > self.capacity {
            return Err(SnapError::Corrupt);
        }
        self.scratch_head = 0;
        Ok(())
    }
}
