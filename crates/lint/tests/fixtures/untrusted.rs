//! Fixture for L015: untrusted lengths reaching allocation sinks.
//!
//! `parse_len` is declared an `[[untrusted]]` root in lint.toml — it is
//! the fixture's stand-in for a wire-format length field. Anything
//! derived from its return value is tainted until a dominating bound
//! (`.min`, `.clamp`, an early-return guard) caps its magnitude.

const MAX_FRAME: usize = 4096;

/// The untrusted root: pulls a length out of a raw frame.
fn parse_len(frame: &[u8]) -> usize {
    frame.len()
}

/// Tainted length straight into an allocation — fires.
fn ingest(frame: &[u8]) -> Vec<u64> {
    let n = parse_len(frame);
    Vec::with_capacity(n) // FIRE: L015
}

/// Same shape, but the length is clamped first — silent.
fn ingest_clamped(frame: &[u8]) -> Vec<u64> {
    let n = parse_len(frame).min(MAX_FRAME);
    Vec::with_capacity(n)
}

/// Guard-style sanitizer: the branch rejects oversize input — silent.
fn ingest_checked(frame: &[u8]) -> Vec<u64> {
    let n = parse_len(frame);
    if n > MAX_FRAME {
        return Vec::new();
    }
    Vec::with_capacity(n)
}

/// The taint survives a call boundary: `build_table` never sees the
/// root directly, only an argument its caller derived from it.
fn build_table(entry_count: usize) -> Vec<u64> {
    vec![0u64; entry_count] // FIRE: L015
}

fn ingest_indirect(frame: &[u8]) -> Vec<u64> {
    build_table(parse_len(frame))
}
