//! L013 fixture: `fixture_drain` is the declared `[[pool]]` root; the
//! stdio lock two calls down must fire with the full chain in its
//! message.

pub fn fixture_drain(jobs: &[u64]) -> u64 {
    let mut acc = 0;
    for j in jobs {
        acc += step(*j);
    }
    acc
}

fn step(j: u64) -> u64 {
    log_progress(j);
    j + 1
}

fn log_progress(j: u64) {
    println!("cell {j}"); // FIRE: L013 (stdio lock in the pool loop)
}
