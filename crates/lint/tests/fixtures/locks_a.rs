//! L011 fixture, half one: acquires `Hub.a` then `Hub.b`. Together with
//! the opposite order in locks_b.rs this closes a lock-order inversion
//! cycle spanning two files. The diagnostic lands on the second
//! acquisition of the lexicographically first edge — here — and its
//! message must name both acquisition sites.

use std::sync::Mutex;

pub struct Hub {
    pub a: Mutex<u64>,
    pub b: Mutex<u64>,
}

pub fn alpha_then_beta(h: &Hub) {
    let ga = h.a.lock();
    let _gb = h.b.lock(); // FIRE: L011 (Hub.a -> Hub.b -> Hub.a cycle)
    drop(ga);
}
