//! L006 fixture (plus the version constant L005 reads).

pub const TRACE_FORMAT_VERSION: u32 = 1;

pub fn encode(x: u64) -> u16 {
    x as u16 // FIRE: L006 (unchecked narrowing cast)
}
