//! L001/L002 fixture: `hot_fn` is a root in the fixture lint.toml's
//! [[hot]] section, so every marked line below must produce a finding.
//! `suppressed_fn` demonstrates that a reasoned pragma suppresses, the
//! reasonless pragma above `harmless` is itself an L000 finding, and the
//! `root_fn -> mid_fn -> leaf_alloc` chain proves transitive propagation:
//! only `root_fn` is declared, yet the allocation two calls down fires
//! with the full call chain in its message.

pub fn hot_fn(xs: &[u64], i: usize) -> u64 {
    let v: Vec<u64> = Vec::new(); // FIRE: L001 (Vec::new constructor)
    let s = format!("{i}"); // FIRE: L001 (format! allocates)
    let m = std::collections::HashMap::new(); // FIRE: L001 (heap collection)
    let first = xs.first().unwrap(); // FIRE: L002 (unwrap can panic)
    let direct = xs[i]; // FIRE: L002 (slice index without get)
    let _ = (v, s, m);
    *first + direct
}

pub fn suppressed_fn(xs: &[u64]) -> u64 {
    // lint:allow(L002): fixture — demonstrates a reasoned suppression
    let first = xs.first().unwrap();
    *first
}

// lint:allow(L001) // FIRE: L000 (pragma missing its mandatory reason)
pub fn harmless() -> u64 {
    0
}

// --- transitive propagation: only `root_fn` is declared in lint.toml ---

pub fn root_fn(n: usize) -> u64 {
    mid_fn(n)
}

fn mid_fn(n: usize) -> u64 {
    leaf_alloc(n)
}

fn leaf_alloc(n: usize) -> u64 {
    let v = vec![0u64; n]; // FIRE: L001 (two calls below the declared root)
    v.len() as u64
}

// --- the `lint:extern` escape hatch severs the call edge ---

pub fn extern_blocked(n: usize) -> u64 {
    helper_behind_extern(n) // lint:extern — dispatched dynamically in production
}

// No marker here: the extern pragma on the call site above severs the
// edge, so this body is not hot even though it allocates.
fn helper_behind_extern(n: usize) -> u64 {
    let v = vec![1u64; n];
    v.len() as u64
}
