//! L001/L002 fixture: `hot_fn` is listed in the fixture lint.toml's
//! [[hot]] section, so every marked line below must produce a finding.
//! `suppressed_fn` demonstrates that a reasoned pragma suppresses, and
//! the reasonless pragma above `harmless` is itself an L000 finding.

pub fn hot_fn(xs: &[u64], i: usize) -> u64 {
    let v: Vec<u64> = Vec::new(); // FIRE: L001 (Vec::new constructor)
    let s = format!("{i}"); // FIRE: L001 (format! allocates)
    let m = std::collections::HashMap::new(); // FIRE: L001 (heap collection)
    let first = xs.first().unwrap(); // FIRE: L002 (unwrap can panic)
    let direct = xs[i]; // FIRE: L002 (slice index without get)
    let _ = (v, s, m);
    *first + direct
}

pub fn suppressed_fn(xs: &[u64]) -> u64 {
    // lint:allow(L002): fixture — demonstrates a reasoned suppression
    let first = xs.first().unwrap();
    *first
}

// lint:allow(L001) // FIRE: L000 (pragma missing its mandatory reason)
pub fn harmless() -> u64 {
    0
}
