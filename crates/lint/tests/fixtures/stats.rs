//! L003 fixture: `Stats` is the root stats struct; `reader.rs` is the
//! read scope. Fields never read there are dead counters, including in
//! the recursively resolved `SubStats`.

pub struct Stats {
    pub read_me: u64,
    pub dead_counter: u64, // FIRE: L003 (accumulated, never consumed)
    pub sub: SubStats,
}

pub struct SubStats {
    pub sub_read: u64,
    pub sub_dead: u64, // FIRE: L003 (dead in a nested stats struct)
}
