//! L010 fixture: integer-range dataflow on the hot path. `arith_root` is
//! the only declared root; `unchecked_product` proves L010 propagates
//! transitively and names the chain. The guarded, headroom and
//! saturating shapes below must stay silent — they are the prescribed
//! fixes, and flagging them would teach people to ignore the rule.

pub struct Tally {
    total_cycles: u64,
}

pub fn arith_root(t: &mut Tally, stall_cycles: u64, op_count: u64) {
    t.total_cycles += stall_cycles; // FIRE: L010 (accumulator add can wrap)
    let _ = guarded_sub(stall_cycles, op_count);
    let _ = headroom_add(stall_cycles, op_count);
    saturating_tally(t, stall_cycles);
    let _ = unchecked_product(stall_cycles, op_count);
}

// Transitively hot: unknown × unknown on count-typed operands can wrap
// in one multiply.
fn unchecked_product(stall_cycles: u64, op_count: u64) -> u64 {
    stall_cycles * op_count // FIRE: L010 (unknown product)
}

// Silent: the dominating guard proves the subtraction cannot wrap, and
// the proof must not leak into the else branch (which avoids the op).
fn guarded_sub(end_cycle: u64, start_cycle: u64) -> u64 {
    if end_cycle >= start_cycle {
        end_cycle - start_cycle
    } else {
        0
    }
}

// Silent: two unknown operands carry 2 bits of headroom — a single add
// cannot reach u64::MAX.
fn headroom_add(a_cycles: u64, b_cycles: u64) -> u64 {
    a_cycles + b_cycles
}

// Silent: the saturating form is the prescribed fix.
fn saturating_tally(t: &mut Tally, stall_cycles: u64) {
    t.total_cycles = t.total_cycles.saturating_add(stall_cycles);
}

// Interprocedural: the sentinel constant is two calls away. A summary-
// free analysis would give `relay_cycles()` the one-shot unknown range
// [0, 2^62] and call the add safe by headroom; the callee summary
// carries u64::MAX through the relay and the add fires.
fn sentinel_cycles() -> u64 {
    18_446_744_073_709_551_615 // the "no next event" sentinel
}

fn relay_cycles() -> u64 {
    sentinel_cycles()
}

fn sentinel_add(base_cycles: u64) -> u64 {
    relay_cycles() + base_cycles // FIRE: L010 (sentinel via two calls)
}

// Silent decoy, same two-call shape: without summaries this unknown ×
// unknown product would fire exactly like `unchecked_product`; the
// callee summary [3, 3] bounds it under u64::MAX.
fn issue_width_count() -> u64 {
    3
}

fn relay_width_count() -> u64 {
    issue_width_count()
}

fn bounded_chain_product(op_count: u64) -> u64 {
    relay_width_count() * op_count
}
