//! The L003 read scope: consumes the live counters of `Stats`. Writing
//! a field (`accumulate` below) does not count as a read.

pub fn report(s: &Stats) -> u64 {
    s.read_me + s.sub.sub_read
}

pub fn accumulate(s: &mut Stats) {
    s.dead_counter += 1;
}
