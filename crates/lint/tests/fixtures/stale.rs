//! L009 fixture: a well-formed pragma whose rule no longer fires on its
//! target is itself an error — stale allows are silent rule holes.

// lint:allow(L001): the allocation was removed long ago // FIRE: L009 (stale allow)
pub fn tidy() -> u64 {
    42
}
