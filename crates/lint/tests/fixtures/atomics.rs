//! L012 fixture: both suspicious-ordering shapes fire; the Relaxed
//! `fetch_add` counter and the single-thread Relaxed pair are decoys
//! that must stay silent.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::thread::Scope;

pub struct Flags {
    ready: AtomicBool,
    served: AtomicU64,
    local_gen: AtomicU64,
}

// Publisher: Release store of the ready flag.
pub fn publish(f: &Flags) {
    f.ready.store(true, Ordering::Release);
}

// Consumer: the Relaxed load does not synchronize-with the Release
// store, so data published before the flag may not be visible.
pub fn consume(f: &Flags) -> bool {
    f.ready.load(Ordering::Relaxed) // FIRE: L012 (Release store, Relaxed load)
}

// Decoy: a Relaxed fetch_add counter is RMW-only — never flagged.
pub fn count(f: &Flags) {
    f.served.fetch_add(1, Ordering::Relaxed);
}

// Decoy: Relaxed store+load confined to one thread (no spawn boundary).
pub fn single_thread(f: &Flags) -> u64 {
    f.local_gen.store(7, Ordering::Relaxed);
    f.local_gen.load(Ordering::Relaxed)
}

// A stop flag crossing a spawn boundary with Relaxed on every side: if
// it guards non-atomic data, the worker can see the flag without the
// data.
pub fn spawn_stop_flag<'s>(scope: &'s Scope<'s, '_>, stop: &'s AtomicBool) {
    scope.spawn(|| {
        while !stop.load(Ordering::Relaxed) {}
    });
    stop.store(true, Ordering::Relaxed); // FIRE: L012 (Relaxed across spawn)
}
