//! Fixture for L016: wire-format drift between writer/reader pairs.
//!
//! Two seeded mismatches, one per pair kind:
//!
//! * **json** — `read_status` looks up `"stall_count"` but the writer
//!   emits `"stalls"`; the lookup can never hit.
//! * **record** — `Frame::flags` is serialized but never reconstructed
//!   (the decode-side struct literal hides it behind `..`), and
//!   `Frame::padding` is filled at decode time without ever having been
//!   written.

use std::collections::BTreeMap;

struct Frame {
    cycles: u64,
    flags: u32,   // FIRE: L016
    padding: u32, // FIRE: L016
}

impl Frame {
    fn empty() -> Frame {
        Frame {
            cycles: 0,
            flags: 0,
            padding: 0,
        }
    }
}

fn write_status(out: &mut BTreeMap<String, u64>, cycles: u64, stalls: u64) {
    out.insert("cycles".to_string(), cycles);
    out.insert("stalls".to_string(), stalls);
}

fn read_status(m: &BTreeMap<String, u64>) -> (u64, u64) {
    let cycles = m.get("cycles").copied().unwrap_or(0);
    let stalls = m.get("stall_count").copied().unwrap_or(0); // FIRE: L016
    (cycles, stalls)
}

fn encode_frame(f: &Frame, out: &mut Vec<u8>) {
    out.extend_from_slice(&f.cycles.to_le_bytes());
    out.extend_from_slice(&f.flags.to_le_bytes());
}

fn decode_frame(bytes: &[u8]) -> Frame {
    let mut c = [0u8; 8];
    c.copy_from_slice(&bytes[..8]);
    Frame {
        cycles: u64::from_le_bytes(c),
        padding: 1,
        ..Frame::empty()
    }
}
