//! L011 fixture, half two: acquires `Hub.b` then `Hub.a` — the reverse
//! of locks_a.rs. No marker here: the cycle is reported once, at the
//! edge site in locks_a.rs, but the message must cite this acquisition
//! too.

use crate::locks_a::Hub;

pub fn beta_then_alpha(h: &Hub) {
    let gb = h.b.lock();
    let _ga = h.a.lock();
    drop(gb);
}
