//! L004 fixture: every pub knob of `Config` must be referenced under
//! `bench/` (the fixture's used_in scope). `closure_knob` is exercised
//! only through a typed closure parameter, and `bench/decoy.rs` pokes a
//! same-named field on an unrelated struct — both regression-test the
//! receiver-type matching.

pub struct Config {
    pub used_knob: u32,
    pub closure_knob: u32,
    pub unused_knob: u32, // FIRE: L004 (no sweep or report touches it)
}
