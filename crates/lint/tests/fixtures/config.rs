//! L004 fixture: every pub knob of `Config` must be referenced under
//! `bench/` (the fixture's used_in scope).

pub struct Config {
    pub used_knob: u32,
    pub unused_knob: u32, // FIRE: L004 (no sweep or report touches it)
}
