//! L008 fixture: `units.rs` is in the fixture's [units] scope, so
//! `+`/`-` combining a cycle-unit operand with a count-unit one fires
//! unless an explicit cast marks the conversion site.

pub struct Pipe {
    pub busy_cycles: u64,
    pub retire_count: u64,
}

pub fn drain_time(p: &Pipe) -> u64 {
    p.busy_cycles + p.retire_count // FIRE: L008 (cycles + count without a cast)
}

pub fn backlog(stall_cycles: usize, xs: &[u64]) -> usize {
    stall_cycles + xs.len() // FIRE: L008 (.len() is a count)
}

// An explicit cast marks the conversion as intentional: no finding.
pub fn explicit_ok(p: &Pipe) -> u64 {
    p.busy_cycles + p.retire_count as u64
}
