//! Incremental-cache soundness: editing a *callee* must invalidate the
//! transitive *callers'* deep results, even though the callers' own files
//! are byte-identical and their shallow facts are served from the cache.
//!
//! The regression scenario: `root.rs` adds `leaf_cycles() + base_cycles`
//! where `leaf_cycles` lives in `leaf.rs`. With the leaf returning 3 the
//! sum has headroom and L010 stays silent. We warm the cache, then edit
//! only `leaf.rs` to return u64::MAX and re-run *with the same cache* —
//! the root-file L010 finding must appear (the call-graph dependency
//! hash caught the callee edit) while the unchanged `root.rs` still
//! counts as a cache hit (the cache was consulted, not bypassed).

use std::path::{Path, PathBuf};

use aurora_lint::cache::Cache;
use aurora_lint::config::LintConfig;
use aurora_lint::{analyze_with, cache_key};

const LINT_TOML: &str = r#"exclude = []

[[hot]]
file = "root.rs"
roots = ["tally_root"]
"#;

const ROOT_RS: &str = r#"pub fn tally_root(base_cycles: u64) -> u64 {
    bridge_cycles(base_cycles)
}

fn bridge_cycles(base_cycles: u64) -> u64 {
    leaf_cycles() + base_cycles
}
"#;

const LEAF_BENIGN: &str = "pub fn leaf_cycles() -> u64 {\n    3\n}\n";

const LEAF_SENTINEL: &str = "pub fn leaf_cycles() -> u64 {\n    18_446_744_073_709_551_615\n}\n";

fn write_workspace(dir: &Path, leaf_body: &str) {
    std::fs::create_dir_all(dir).expect("create workspace dir");
    std::fs::write(dir.join("lint.toml"), LINT_TOML).expect("write lint.toml");
    std::fs::write(dir.join("root.rs"), ROOT_RS).expect("write root.rs");
    std::fs::write(dir.join("leaf.rs"), leaf_body).expect("write leaf.rs");
}

fn run_cached(dir: &Path, cache_path: &Path, key: u64) -> (aurora_lint::Report, Cache) {
    let cfg = LintConfig::load(&dir.join("lint.toml")).expect("parse lint.toml");
    let mut cache = Cache::load(cache_path, key);
    let report = analyze_with(dir, &cfg, Some(&mut cache)).expect("analysis succeeds");
    (report, cache)
}

#[test]
fn callee_edit_invalidates_transitive_caller() {
    let dir: PathBuf =
        std::env::temp_dir().join(format!("aurora-lint-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    write_workspace(&dir, LEAF_BENIGN);
    let cache_path = dir.join("aurora-lint.cache");
    let key = cache_key(LINT_TOML);

    // Warm run: leaf returns 3, the sum has headroom, nothing fires.
    let (warm, cache) = run_cached(&dir, &cache_path, key);
    assert!(
        warm.findings.is_empty(),
        "benign workspace must be clean, got:\n{}",
        warm.findings
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
    cache.save(&cache_path);
    assert!(cache_path.exists(), "warm cache must persist");

    // Edit ONLY the leaf: root.rs stays byte-identical.
    std::fs::write(dir.join("leaf.rs"), LEAF_SENTINEL).expect("edit leaf.rs");

    // Re-run with the warm cache — no --no-cache escape hatch.
    let (cold, _) = run_cached(&dir, &cache_path, key);
    assert!(
        cold.cache_hits > 0,
        "unchanged root.rs must be served from the cache (got 0 hits)"
    );
    let fired = cold
        .findings
        .iter()
        .any(|f| f.file == "root.rs" && f.rule == "L010");
    assert!(
        fired,
        "callee edit must resurface the caller's L010 finding, got:\n{}",
        cold.findings
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// The inverse property: with *no* edits, a second run over the warm
/// cache reproduces the identical report — the dep-hash must not spuriously
/// invalidate, and cached deep facts must round-trip findings faithfully.
#[test]
fn warm_rerun_is_stable_and_fully_cached() {
    let dir: PathBuf =
        std::env::temp_dir().join(format!("aurora-lint-cache-stable-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    // Seed with the sentinel so the report is non-trivial.
    write_workspace(&dir, LEAF_SENTINEL);
    let cache_path = dir.join("aurora-lint.cache");
    let key = cache_key(LINT_TOML);

    let (first, cache) = run_cached(&dir, &cache_path, key);
    assert!(
        first
            .findings
            .iter()
            .any(|f| f.file == "root.rs" && f.rule == "L010"),
        "sentinel workspace must fire L010 in root.rs"
    );
    cache.save(&cache_path);

    let (second, _) = run_cached(&dir, &cache_path, key);
    assert_eq!(second.cache_hits, 2, "both .rs files must hit the cache");
    let render = |r: &aurora_lint::Report| {
        r.findings
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
    };
    assert_eq!(
        render(&first),
        render(&second),
        "cached re-run must reproduce the report verbatim"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
