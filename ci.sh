#!/usr/bin/env bash
# Offline CI gate: format, lint, build, test, and check capture/replay
# equivalence. Run from the repo root; exits non-zero on any failure.
set -euo pipefail
cd "$(dirname "$0")"

echo "== rustfmt =="
cargo fmt --all -- --check

echo "== aurora-lint (workspace invariant gate, docs/LINTS.md) =="
# One invocation gates the build, emits the SARIF artifact and records
# the analyzer perf baseline: findings go to lint.sarif for
# code-scanning upload, the human summary goes to stderr, and a
# non-zero exit fails CI.
mkdir -p target/ci
cargo run -q -p aurora-lint -- --format sarif --bench target/ci/BENCH_lint.json > lint.sarif
# The semantic rules (dataflow, concurrency, checkpoint drift, taint,
# wire drift) must be in the shipped catalogue — a SARIF without them
# means the gate silently lost coverage.
for rule in L010 L011 L012 L013 L014 L015 L016; do
    grep -q "\"id\": \"$rule\"" lint.sarif
done
grep -q '"rules": 17' target/ci/BENCH_lint.json

echo "== aurora-lint --fix --dry-run (shipped tree needs no mechanical fixes) =="
cargo run -q -p aurora-lint -- --fix --dry-run 2>&1 >/dev/null | grep -q "0 edit(s) planned"

echo "== build (release) =="
cargo build --release --workspace

echo "== tests =="
cargo test -q --workspace

echo "== aurora-lint self-tests (fixture rules) =="
cargo test -q -p aurora-lint

echo "== rustdoc (missing/broken docs are errors; vendored crates excluded) =="
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps -q \
    -p aurora-isa -p aurora-workloads -p aurora-mem -p aurora-core \
    -p aurora-cost -p aurora-bench -p aurora-serve -p aurora-lint -p aurora3

echo "== clippy =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== clippy perf lints (hot-path + codec crates) =="
cargo clippy -p aurora-core -p aurora-mem -p aurora-isa -- -D clippy::perf

echo "== capture/replay equivalence =="
cargo test -q --test packed_replay

echo "== cycle-skip differential equivalence =="
cargo test -q --test event_horizon_differential

echo "== block-replay differential equivalence =="
cargo test -q --test block_replay_differential

echo "== checkpoint differential (save/restore/resume bit-identical) =="
cargo test -q --test checkpoint_differential

echo "== perf smoke (block replay bit-identical at test scale) =="
mkdir -p target/ci
cargo run --release -q -p aurora-bench --bin perf_baseline -- \
    --scale test --out target/ci/BENCH_replay.json --sim-out target/ci/BENCH_sim.json \
    --sampled-out target/ci/BENCH_sampled.json
grep -q '"stats_bit_identical": true' target/ci/BENCH_sim.json

echo "== sampled smoke (suite-mean CPI error within 2% of full detail) =="
grep -q '"mean_cpi_error_within_2pct": true' target/ci/BENCH_sampled.json

echo "== service smoke (daemon answers a grid; repeat is all-memo, zero re-simulation) =="
rm -rf target/ci/serve-store target/ci/aurora.sock
./target/release/aurora-serve --store target/ci/serve-store --unix target/ci/aurora.sock &
SERVE_PID=$!
trap 'kill "$SERVE_PID" 2>/dev/null || true' EXIT
for _ in $(seq 1 100); do [ -S target/ci/aurora.sock ] && break; sleep 0.1; done
[ -S target/ci/aurora.sock ]
# Same 2×2 grid twice: pass 1 may simulate, pass 2 must be 100% memo
# hits (>=90% is the gate's floor; the store makes it exactly 4/4).
./target/release/aurora-query --unix target/ci/aurora.sock \
    --models baseline --issue single,dual --workloads espresso,compress \
    --scale test --mode block > target/ci/serve_pass1.ndjson
grep -q '"type":"summary"' target/ci/serve_pass1.ndjson
./target/release/aurora-query --unix target/ci/aurora.sock \
    --models baseline --issue single,dual --workloads espresso,compress \
    --scale test --mode block > target/ci/serve_pass2.ndjson
grep -q '"memo_hits":4' target/ci/serve_pass2.ndjson
grep -q '"simulated":0' target/ci/serve_pass2.ndjson
kill "$SERVE_PID"
trap - EXIT

echo "== serve perf smoke (cold/warm latency, memo hit rate, bit-identity) =="
cargo run --release -q -p aurora-serve --bin serve_baseline -- \
    --scale test --out target/ci/BENCH_serve.json
grep -q '"memo_bit_identical": true' target/ci/BENCH_serve.json
grep -q '"warm_hit_rate": 1.000' target/ci/BENCH_serve.json
grep -q '"warm_simulated": 0' target/ci/BENCH_serve.json

echo "CI OK"
