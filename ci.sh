#!/usr/bin/env bash
# Offline CI gate: build, test, lint, and check capture/replay
# equivalence. Run from the repo root; exits non-zero on any failure.
set -euo pipefail
cd "$(dirname "$0")"

echo "== build (release) =="
cargo build --release --workspace

echo "== tests =="
cargo test -q --workspace

echo "== clippy =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== clippy perf lints (hot-path crates) =="
cargo clippy -p aurora-core -p aurora-mem -- -D clippy::perf

echo "== capture/replay equivalence =="
cargo test -q --test packed_replay

echo "== cycle-skip differential equivalence =="
cargo test -q --test event_horizon_differential

echo "CI OK"
