//! Differential validation of event-horizon scheduling: the cycle-skip
//! fast path must be *observationally identical* to the naive reference
//! mode that walks every intervening cycle performing unit maintenance.
//!
//! Two layers of evidence:
//!
//! 1. a property test over random short traces — every op kind, register
//!    shape and address pattern — crossed with all three machine models
//!    and both issue widths, and
//! 2. the full 15-kernel suite replayed under both modes.
//!
//! Equality is `SimStats: Eq` — bit-identical counters, not tolerances.

use aurora3::core::{replay, simulate, IssueWidth, MachineConfig, MachineModel, SimStats};
use aurora3::isa::{ArchReg, MemWidth, OpKind, TraceOp};
use aurora3::mem::LatencyModel;
use aurora3::workloads::{FpBenchmark, IntBenchmark, Scale, Workload};
use proptest::prelude::*;

fn reg_from(sel: u8) -> Option<ArchReg> {
    match sel % 67 {
        0 => None,
        v @ 1..=32 => Some(ArchReg::Int(v - 1)),
        v @ 33..=64 => Some(ArchReg::Fp(v - 33)),
        65 => Some(ArchReg::HiLo),
        _ => Some(ArchReg::FpCond),
    }
}

fn width_from(sel: u8) -> MemWidth {
    match sel % 4 {
        0 => MemWidth::Byte,
        1 => MemWidth::Half,
        2 => MemWidth::Word,
        _ => MemWidth::Double,
    }
}

fn kind_from(sel: u8, payload: u32, aux: u8) -> OpKind {
    let width = width_from(aux);
    match sel % 19 {
        0 => OpKind::IntAlu,
        1 => OpKind::IntMul,
        2 => OpKind::IntDiv,
        3 => OpKind::Load { ea: payload, width },
        4 => OpKind::Store { ea: payload, width },
        5 => OpKind::FpLoad { ea: payload, width },
        6 => OpKind::FpStore { ea: payload, width },
        7 => OpKind::Branch {
            taken: aux & 1 != 0,
            target: payload,
        },
        8 => OpKind::Jump {
            target: payload,
            register: aux & 1 != 0,
        },
        9 => OpKind::FpAdd,
        10 => OpKind::FpMul,
        11 => OpKind::FpDiv,
        12 => OpKind::FpSqrt,
        13 => OpKind::FpCvt,
        14 => OpKind::FpMove,
        15 => OpKind::FpCmp,
        _ => OpKind::Nop,
    }
}

/// Expands one seed into a trace op. Addresses are folded into a window a
/// few lines wide around several bases so the trace exercises cache hits,
/// misses, secondary-miss merges and write-cache coalescing rather than
/// touching every address once.
fn op_from(seed: u64, i: usize) -> TraceOp {
    let pc = 0x0040_0000 + 4 * ((seed >> 32) as u32 % 64);
    let region = [0x2000u32, 0x0010_0000, 0x0070_0000][i % 3];
    let payload = region + 8 * ((seed >> 12) as u32 % 256);
    TraceOp {
        pc,
        kind: kind_from((seed >> 8) as u8, payload, (seed >> 16) as u8),
        dst: reg_from((seed >> 24) as u8),
        src1: reg_from((seed >> 40) as u8),
        src2: reg_from((seed >> 48) as u8),
    }
}

fn config(model: MachineModel, issue: IssueWidth, skip: bool) -> MachineConfig {
    let mut cfg = model.config(issue, LatencyModel::Fixed(17));
    cfg.cycle_skip = skip;
    cfg
}

fn both_modes(model: MachineModel, issue: IssueWidth, ops: &[TraceOp]) -> (SimStats, SimStats) {
    let skip = simulate(&config(model, issue, true), ops.iter().copied());
    let naive = simulate(&config(model, issue, false), ops.iter().copied());
    (skip, naive)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random short traces: skip and naive modes agree bit-for-bit on
    /// every machine model at both issue widths.
    #[test]
    fn random_traces_agree_across_models_and_widths(
        seeds in proptest::collection::vec(any::<u64>(), 1..120),
    ) {
        let ops: Vec<TraceOp> =
            seeds.iter().enumerate().map(|(i, &s)| op_from(s, i)).collect();
        for model in MachineModel::ALL {
            for issue in [IssueWidth::Single, IssueWidth::Dual] {
                let (skip, naive) = both_modes(model, issue, &ops);
                prop_assert_eq!(
                    skip, naive,
                    "skip != naive for {:?}/{:?}", model, issue
                );
            }
        }
    }
}

/// Every kernel in both suites produces bit-identical `SimStats` whether
/// the clock jumps over quiescent regions or walks them cycle by cycle.
#[test]
fn all_kernels_agree_skip_vs_naive() {
    let mut workloads: Vec<Workload> = IntBenchmark::ALL
        .into_iter()
        .map(|b| b.workload(Scale::Test))
        .collect();
    workloads.extend(
        FpBenchmark::ALL
            .into_iter()
            .map(|b| b.workload(Scale::Test)),
    );
    assert_eq!(workloads.len(), 15);
    for w in &workloads {
        let trace = w.capture().expect("kernel captures");
        for issue in [IssueWidth::Single, IssueWidth::Dual] {
            let skip = replay(&config(MachineModel::Baseline, issue, true), &trace);
            let naive = replay(&config(MachineModel::Baseline, issue, false), &trace);
            assert_eq!(skip, naive, "{} diverged ({issue:?})", w.name());
        }
    }
}
