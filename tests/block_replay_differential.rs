//! Differential validation of basic-block superinstruction replay: the
//! block-granular engine (`replay_blocks`, with its scoreboard-only
//! fast path) must be *observationally identical* to the per-op packed
//! walk (`replay`) and to incremental streaming (`simulate`).
//!
//! Layers of evidence:
//!
//! 1. a property test over random short traces — every op kind,
//!    register shape and address pattern — crossed with all three
//!    machine models and both issue widths, comparing five engines
//!    (streaming, packed, block fast path, block with the fast path
//!    disabled, and block replay under the naive cycle-walking mode),
//! 2. the full 15-kernel suite replayed block-wise vs per-op,
//! 3. edge cases: odd-length and single-op traces (the `feed_packed`
//!    tail-handling regression), all-branch traces (every block is one
//!    op), and mixed incremental-feed + block-feed delivery.
//!
//! Equality is `SimStats: Eq` — bit-identical counters, not tolerances.

use aurora3::core::{
    replay, replay_blocks, simulate, IssueWidth, MachineConfig, MachineModel, SimStats, Simulator,
};
use aurora3::isa::{ArchReg, BlockTrace, MemWidth, OpKind, PackedTrace, TraceOp};
use aurora3::mem::LatencyModel;
use aurora3::workloads::{FpBenchmark, IntBenchmark, Scale, Workload};
use proptest::prelude::*;

fn reg_from(sel: u8) -> Option<ArchReg> {
    match sel % 67 {
        0 => None,
        v @ 1..=32 => Some(ArchReg::Int(v - 1)),
        v @ 33..=64 => Some(ArchReg::Fp(v - 33)),
        65 => Some(ArchReg::HiLo),
        _ => Some(ArchReg::FpCond),
    }
}

fn width_from(sel: u8) -> MemWidth {
    match sel % 4 {
        0 => MemWidth::Byte,
        1 => MemWidth::Half,
        2 => MemWidth::Word,
        _ => MemWidth::Double,
    }
}

fn kind_from(sel: u8, payload: u32, aux: u8) -> OpKind {
    let width = width_from(aux);
    match sel % 19 {
        0 => OpKind::IntAlu,
        1 => OpKind::IntMul,
        2 => OpKind::IntDiv,
        3 => OpKind::Load { ea: payload, width },
        4 => OpKind::Store { ea: payload, width },
        5 => OpKind::FpLoad { ea: payload, width },
        6 => OpKind::FpStore { ea: payload, width },
        7 => OpKind::Branch {
            taken: aux & 1 != 0,
            target: payload,
        },
        8 => OpKind::Jump {
            target: payload,
            register: aux & 1 != 0,
        },
        9 => OpKind::FpAdd,
        10 => OpKind::FpMul,
        11 => OpKind::FpDiv,
        12 => OpKind::FpSqrt,
        13 => OpKind::FpCvt,
        14 => OpKind::FpMove,
        15 => OpKind::FpCmp,
        _ => OpKind::Nop,
    }
}

/// Expands one seed into a trace op (same generator as the
/// event-horizon differential suite, so both suites walk the same
/// corner space).
fn op_from(seed: u64, i: usize) -> TraceOp {
    let pc = 0x0040_0000 + 4 * ((seed >> 32) as u32 % 64);
    let region = [0x2000u32, 0x0010_0000, 0x0070_0000][i % 3];
    let payload = region + 8 * ((seed >> 12) as u32 % 256);
    TraceOp {
        pc,
        kind: kind_from((seed >> 8) as u8, payload, (seed >> 16) as u8),
        dst: reg_from((seed >> 24) as u8),
        src1: reg_from((seed >> 40) as u8),
        src2: reg_from((seed >> 48) as u8),
    }
}

fn config(model: MachineModel, issue: IssueWidth, skip: bool) -> MachineConfig {
    let mut cfg = model.config(issue, LatencyModel::Fixed(17));
    cfg.cycle_skip = skip;
    cfg
}

/// Runs all five engines over `ops` and asserts pairwise bit-equality.
/// Returns the agreed stats for any further checks.
fn assert_engines_agree(model: MachineModel, issue: IssueWidth, ops: &[TraceOp]) -> SimStats {
    let trace = PackedTrace::from_ops(ops.iter().copied());
    let blocks = BlockTrace::lower(&trace);
    assert_eq!(blocks.len(), ops.len() as u64, "lowering dropped ops");

    let cfg = config(model, issue, true);
    let streamed = simulate(&cfg, ops.iter().copied());
    let packed = replay(&cfg, &trace);
    let block_fast = replay_blocks(&cfg, &blocks);
    let mut per_op_cfg = cfg.clone();
    per_op_cfg.block_replay = false;
    let block_per_op = replay_blocks(&per_op_cfg, &blocks);
    let naive_cfg = config(model, issue, false);
    let block_naive = replay_blocks(&naive_cfg, &blocks);
    let streamed_naive = simulate(&naive_cfg, ops.iter().copied());

    assert_eq!(packed, streamed, "packed != streamed");
    assert_eq!(block_fast, streamed, "block fast path != streamed");
    assert_eq!(block_per_op, streamed, "block per-op walk != streamed");
    assert_eq!(block_naive, streamed_naive, "block naive != streamed naive");
    block_fast
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random short traces: every replay engine agrees bit-for-bit on
    /// every machine model at both issue widths, in skip and naive modes.
    #[test]
    fn random_traces_agree_across_engines(
        seeds in proptest::collection::vec(any::<u64>(), 1..120),
    ) {
        let ops: Vec<TraceOp> =
            seeds.iter().enumerate().map(|(i, &s)| op_from(s, i)).collect();
        for model in MachineModel::ALL {
            for issue in [IssueWidth::Single, IssueWidth::Dual] {
                assert_engines_agree(model, issue, &ops);
            }
        }
    }

    /// ALU-dense traces maximise fast-path coverage (long scoreboard-only
    /// runs, dense dual-issue pairing) — the adversarial case for the
    /// superinstruction engine rather than for the fallback.
    #[test]
    fn alu_dense_traces_agree(
        seeds in proptest::collection::vec(any::<u64>(), 1..200),
        pc_stride in 1u32..4,
    ) {
        let ops: Vec<TraceOp> = seeds
            .iter()
            .enumerate()
            .map(|(i, &s)| {
                let kind = match s % 16 {
                    0 => OpKind::IntMul,
                    1 => OpKind::IntDiv,
                    2 => OpKind::Branch { taken: s & 2 != 0, target: 0x0040_0000 },
                    _ => OpKind::IntAlu,
                };
                TraceOp {
                    pc: 0x0040_0000 + 4 * ((pc_stride * i as u32) % 64),
                    kind,
                    dst: reg_from((s >> 24) as u8),
                    src1: reg_from((s >> 40) as u8),
                    src2: reg_from((s >> 48) as u8),
                }
            })
            .collect();
        for issue in [IssueWidth::Single, IssueWidth::Dual] {
            assert_engines_agree(MachineModel::Baseline, issue, &ops);
        }
    }
}

/// Every kernel in both suites produces bit-identical `SimStats` whether
/// replayed block-wise (fast path on or off) or op-by-op.
#[test]
fn all_kernels_agree_block_vs_per_op() {
    let mut workloads: Vec<Workload> = IntBenchmark::ALL
        .into_iter()
        .map(|b| b.workload(Scale::Test))
        .collect();
    workloads.extend(
        FpBenchmark::ALL
            .into_iter()
            .map(|b| b.workload(Scale::Test)),
    );
    assert_eq!(workloads.len(), 15);
    for w in &workloads {
        let trace = w.capture().expect("kernel captures");
        let blocks = BlockTrace::lower(&trace);
        assert_eq!(blocks.len(), trace.len() as u64);
        for issue in [IssueWidth::Single, IssueWidth::Dual] {
            let cfg = config(MachineModel::Baseline, issue, true);
            let per_op = replay(&cfg, &trace);
            let block = replay_blocks(&cfg, &blocks);
            assert_eq!(block, per_op, "{} diverged ({issue:?})", w.name());
            let mut ref_cfg = cfg.clone();
            ref_cfg.block_replay = false;
            assert_eq!(
                replay_blocks(&ref_cfg, &blocks),
                per_op,
                "{} diverged with the fast path disabled ({issue:?})",
                w.name()
            );
        }
    }
}

/// The `feed_packed` tail regression (and its block-engine twin): every
/// trace length from empty through several pair cycles must deliver
/// every op exactly once, whichever exit the pair/non-pair paths take.
#[test]
fn odd_and_even_length_tails_deliver_every_op() {
    // Aligned independent ALU pairs, so the pair path (i += 2) is taken
    // and exercises its `i == len` / `i + 1 == len` exits; a trailing
    // branch-heavy variant forces the non-pair path too.
    for len in 0..=17usize {
        let pairable: Vec<TraceOp> = (0..len)
            .map(|i| TraceOp {
                pc: 0x0040_0000 + 4 * (i as u32 % 16),
                kind: OpKind::IntAlu,
                dst: Some(ArchReg::Int(8 + (i % 2) as u8)),
                src1: Some(ArchReg::Int(10 + (i % 2) as u8)),
                src2: None,
            })
            .collect();
        let dependent: Vec<TraceOp> = (0..len)
            .map(|i| TraceOp {
                pc: 0x0040_0000 + 4 * (i as u32 % 16),
                kind: OpKind::IntAlu,
                dst: Some(ArchReg::Int(8)),
                src1: Some(ArchReg::Int(8)),
                src2: None,
            })
            .collect();
        for ops in [pairable, dependent] {
            for issue in [IssueWidth::Single, IssueWidth::Dual] {
                let stats = assert_engines_agree(MachineModel::Baseline, issue, &ops);
                assert_eq!(
                    stats.instructions, len as u64,
                    "an op was dropped or duplicated at len {len} ({issue:?})"
                );
            }
        }
    }
}

/// All-branch traces lower to single-op blocks — the degenerate case for
/// segmentation and for block-boundary pairing.
#[test]
fn all_branch_traces_agree() {
    for taken_mask in [0u32, u32::MAX, 0xAAAA_AAAA] {
        let ops: Vec<TraceOp> = (0..64u32)
            .map(|i| {
                TraceOp::bare(
                    0x0040_0000 + 4 * (i % 32),
                    OpKind::Branch {
                        taken: taken_mask & (1 << (i % 32)) != 0,
                        target: 0x0040_0000 + 4 * ((i + 7) % 32),
                    },
                )
            })
            .collect();
        for issue in [IssueWidth::Single, IssueWidth::Dual] {
            let stats = assert_engines_agree(MachineModel::Baseline, issue, &ops);
            assert_eq!(stats.instructions, 64);
        }
    }
}

/// Incremental `feed` followed by `feed_blocks` must interleave exactly
/// like one continuous stream: the pending look-ahead op pairs with the
/// first block's head.
#[test]
fn mixed_feed_and_block_delivery_agree() {
    let ops: Vec<TraceOp> = (0..40usize)
        .map(|i| op_from(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(i as u64 + 1), i))
        .collect();
    for split in [1usize, 3, 7, 39] {
        for issue in [IssueWidth::Single, IssueWidth::Dual] {
            let cfg = config(MachineModel::Baseline, issue, true);
            let whole = simulate(&cfg, ops.iter().copied());

            let mut sim = Simulator::new(&cfg);
            for op in &ops[..split] {
                sim.feed(*op);
            }
            let tail = BlockTrace::lower_ops(ops[split..].iter().copied());
            sim.feed_blocks(&tail);
            assert_eq!(sim.finish(), whole, "split {split} diverged ({issue:?})");
        }
    }
}

/// A trace that defeats the lowering cap (a straight ALU run far longer
/// than one block) still agrees — block splits are semantically
/// invisible.
#[test]
fn capped_straight_line_blocks_agree() {
    let ops: Vec<TraceOp> = (0..500usize)
        .map(|i| TraceOp {
            pc: 0x0040_0000 + 4 * (i as u32 % 64),
            kind: OpKind::IntAlu,
            dst: Some(ArchReg::Int((i % 24) as u8)),
            src1: Some(ArchReg::Int(((i + 7) % 24) as u8)),
            src2: Some(ArchReg::Int(((i + 13) % 24) as u8)),
        })
        .collect();
    for model in MachineModel::ALL {
        for issue in [IssueWidth::Single, IssueWidth::Dual] {
            let stats = assert_engines_agree(model, issue, &ops);
            assert_eq!(stats.instructions, 500);
        }
    }
}
