//! Differential validation of whole-machine checkpoints: saving the
//! simulator at an arbitrary point, restoring the image into a *fresh*
//! simulator and resuming must produce `SimStats` bit-identical to the
//! uninterrupted run — the property the sampled-simulation
//! infrastructure rests on.
//!
//! Three layers of evidence:
//!
//! 1. a property test over random short traces — every op kind,
//!    register shape and address pattern — split at a random point,
//!    crossed with all three machine models and both issue widths;
//! 2. the same property through a fast-forward boundary: the split
//!    lands inside a functional-warming stretch, under the stochastic
//!    `Uniform` latency model so the BIU's RNG stream is part of the
//!    round trip;
//! 3. corrupt-image tests: truncations and flipped bytes must be
//!    rejected with an error, never absorbed.
//!
//! Equality is `SimStats: Eq` — bit-identical counters, not tolerances.

use aurora3::core::{IssueWidth, MachineConfig, MachineModel, SimStats, Simulator};
use aurora3::isa::{ArchReg, MemWidth, OpKind, PackedTrace, TraceOp};
use aurora3::mem::LatencyModel;
use proptest::prelude::*;

fn reg_from(sel: u8) -> Option<ArchReg> {
    match sel % 67 {
        0 => None,
        v @ 1..=32 => Some(ArchReg::Int(v - 1)),
        v @ 33..=64 => Some(ArchReg::Fp(v - 33)),
        65 => Some(ArchReg::HiLo),
        _ => Some(ArchReg::FpCond),
    }
}

fn width_from(sel: u8) -> MemWidth {
    match sel % 4 {
        0 => MemWidth::Byte,
        1 => MemWidth::Half,
        2 => MemWidth::Word,
        _ => MemWidth::Double,
    }
}

fn kind_from(sel: u8, payload: u32, aux: u8) -> OpKind {
    let width = width_from(aux);
    match sel % 19 {
        0 => OpKind::IntAlu,
        1 => OpKind::IntMul,
        2 => OpKind::IntDiv,
        3 => OpKind::Load { ea: payload, width },
        4 => OpKind::Store { ea: payload, width },
        5 => OpKind::FpLoad { ea: payload, width },
        6 => OpKind::FpStore { ea: payload, width },
        7 => OpKind::Branch {
            taken: aux & 1 != 0,
            target: payload,
        },
        8 => OpKind::Jump {
            target: payload,
            register: aux & 1 != 0,
        },
        9 => OpKind::FpAdd,
        10 => OpKind::FpMul,
        11 => OpKind::FpDiv,
        12 => OpKind::FpSqrt,
        13 => OpKind::FpCvt,
        14 => OpKind::FpMove,
        15 => OpKind::FpCmp,
        _ => OpKind::Nop,
    }
}

/// Expands one seed into a trace op, folding addresses into a window a
/// few lines wide around several bases so the trace exercises cache
/// hits, misses, secondary-miss merges and write-cache coalescing.
fn op_from(seed: u64, i: usize) -> TraceOp {
    let pc = 0x0040_0000 + 4 * ((seed >> 32) as u32 % 64);
    let region = [0x2000u32, 0x0010_0000, 0x0070_0000][i % 3];
    let payload = region + 8 * ((seed >> 12) as u32 % 256);
    TraceOp {
        pc,
        kind: kind_from((seed >> 8) as u8, payload, (seed >> 16) as u8),
        dst: reg_from((seed >> 24) as u8),
        src1: reg_from((seed >> 40) as u8),
        src2: reg_from((seed >> 48) as u8),
    }
}

fn trace_from(seeds: &[u64]) -> PackedTrace {
    PackedTrace::from_ops(seeds.iter().enumerate().map(|(i, &s)| op_from(s, i)))
}

/// Feeds the whole trace without interruption.
fn uninterrupted(cfg: &MachineConfig, trace: &PackedTrace) -> SimStats {
    let mut sim = Simulator::new(cfg);
    sim.feed_records(trace.records());
    sim.finish()
}

/// Feeds a prefix, saves, restores the image into a fresh simulator,
/// resumes with the suffix.
fn resumed(cfg: &MachineConfig, trace: &PackedTrace, split: usize) -> SimStats {
    let ops = trace.records();
    let mut sim = Simulator::new(cfg);
    sim.feed_records(&ops[..split]);
    let image = sim.save_checkpoint();
    drop(sim);

    let mut sim = Simulator::new(cfg);
    sim.restore_checkpoint(&image).expect("restore own image");
    sim.feed_records(&ops[split..]);
    sim.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Save at a random op, restore into a fresh machine, resume: every
    /// model at both issue widths reproduces the uninterrupted stats
    /// bit-for-bit.
    #[test]
    fn resume_matches_uninterrupted_across_models_and_widths(
        seeds in proptest::collection::vec(any::<u64>(), 2..140),
        split_sel in any::<u32>(),
    ) {
        let trace = trace_from(&seeds);
        let split = split_sel as usize % (trace.len() + 1);
        for model in MachineModel::ALL {
            for issue in [IssueWidth::Single, IssueWidth::Dual] {
                let cfg = model.config(issue, LatencyModel::Fixed(17));
                let full = uninterrupted(&cfg, &trace);
                let cut = resumed(&cfg, &trace, split);
                prop_assert_eq!(
                    &full, &cut,
                    "resume diverged for {:?}/{:?} at split {}", model, issue, split
                );
            }
        }
    }

    /// The same property through a sampled-simulation shape: detailed
    /// prefix, functional-warming stretch, detailed suffix, with the
    /// checkpoint taken right after the warm stretch — under the
    /// stochastic Uniform latency model, so the BIU RNG stream crosses
    /// the checkpoint too.
    #[test]
    fn resume_through_warming_preserves_rng_and_warm_state(
        seeds in proptest::collection::vec(any::<u64>(), 3..140),
        cuts in any::<u32>(),
    ) {
        let trace = trace_from(&seeds);
        let ops = trace.records();
        let a = cuts as usize % (ops.len() + 1);
        let b = a + (cuts >> 16) as usize % (ops.len() - a + 1);
        let cfg = MachineModel::Baseline
            .config(IssueWidth::Dual, LatencyModel::Uniform { lo: 9, hi: 25 });

        let mut sim = Simulator::new(&cfg);
        sim.feed_records(&ops[..a]);
        sim.warm_records(&ops[a..b]);
        sim.feed_records(&ops[b..]);
        let full = sim.finish();

        let mut sim = Simulator::new(&cfg);
        sim.feed_records(&ops[..a]);
        sim.warm_records(&ops[a..b]);
        let image = sim.save_checkpoint();
        drop(sim);
        let mut sim = Simulator::new(&cfg);
        sim.restore_checkpoint(&image).expect("restore own image");
        sim.feed_records(&ops[b..]);
        let cut = sim.finish();

        prop_assert_eq!(&full, &cut, "warm-boundary resume diverged at {}..{}", a, b);
    }

    /// Any truncation of a valid image is rejected with an error —
    /// restore never absorbs a short read silently.
    #[test]
    fn truncated_images_are_rejected(
        seeds in proptest::collection::vec(any::<u64>(), 2..60),
        frac in 0.0f64..1.0,
    ) {
        let trace = trace_from(&seeds);
        let cfg = MachineModel::Small.config(IssueWidth::Dual, LatencyModel::Fixed(17));
        let mut sim = Simulator::new(&cfg);
        sim.feed_records(trace.records());
        let image = sim.save_checkpoint();
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let cut = ((frac * image.len() as f64) as usize).min(image.len() - 1);
        let mut fresh = Simulator::new(&cfg);
        prop_assert!(
            fresh.restore_checkpoint(&image[..cut]).is_err(),
            "truncation to {} of {} bytes was absorbed", cut, image.len()
        );
    }
}

/// A double round trip is stable: the image saved by a restored machine
/// equals the image it was restored from.
#[test]
fn save_restore_save_is_identity() {
    let seeds: Vec<u64> = (0..200u64)
        .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .collect();
    let trace = trace_from(&seeds);
    for model in MachineModel::ALL {
        let cfg = model.config(IssueWidth::Dual, LatencyModel::average_17());
        let mut sim = Simulator::new(&cfg);
        sim.feed_records(trace.records());
        let first = sim.save_checkpoint();
        let mut sim = Simulator::new(&cfg);
        sim.restore_checkpoint(&first).expect("restore own image");
        let second = sim.save_checkpoint();
        assert_eq!(first, second, "round-tripped image differs for {model:?}");
    }
}

/// A flipped section tag is rejected: the codec checks structure, not
/// just length.
#[test]
fn corrupt_section_tag_is_rejected() {
    let cfg = MachineModel::Baseline.config(IssueWidth::Dual, LatencyModel::Fixed(17));
    let mut sim = Simulator::new(&cfg);
    sim.feed_records(trace_from(&[3, 1, 4, 1, 5, 9, 2, 6]).records());
    let mut image = sim.save_checkpoint();
    // The image opens with a format header followed by the first
    // section tag; smashing an early byte must fail loudly.
    image[0] ^= 0xFF;
    let mut fresh = Simulator::new(&cfg);
    assert!(fresh.restore_checkpoint(&image).is_err());
}
