//! Property-based integration tests across the crates: assembler ↔
//! emulator semantics, trace well-formedness, and simulator invariants on
//! arbitrary synthetic traces.

use aurora3::core::{simulate, IssueWidth, MachineModel};
use aurora3::isa::{Assembler, Emulator, Instruction, OpKind, Reg, RunOutcome};
use aurora3::mem::LatencyModel;
use aurora3::workloads::synthetic::SyntheticConfig;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// A counting loop computes the same closed-form sum for any bound,
    /// and the trace length matches the retired-instruction count.
    #[test]
    fn loop_sums_match_closed_form(n in 1u32..200) {
        let src = format!(
            ".text\n li $t0, {n}\n li $t1, 0\nl: addu $t1, $t1, $t0\n \
             addiu $t0, $t0, -1\n bgtz $t0, l\n nop\n break\n"
        );
        let program = Assembler::new().assemble(&src).unwrap();
        let mut emu = Emulator::new(&program);
        let mut count = 0u64;
        let outcome = emu.run_traced(1_000_000, |_| count += 1).unwrap();
        prop_assert_eq!(outcome, RunOutcome::Halted);
        prop_assert_eq!(emu.reg(Reg::T1), n * (n + 1) / 2);
        prop_assert_eq!(count, emu.retired());
    }

    /// Every instruction in an assembled program survives an
    /// encode/decode round trip.
    #[test]
    fn assembled_programs_round_trip(words in proptest::collection::vec(1u32..64, 1..20)) {
        let mut body = String::from(".text\n");
        for (i, w) in words.iter().enumerate() {
            body.push_str(&format!(" addiu $t{}, $zero, {w}\n", i % 8));
        }
        body.push_str(" break\n");
        let program = Assembler::new().assemble(&body).unwrap();
        for instr in program.instructions() {
            prop_assert_eq!(&Instruction::decode(instr.encode()).unwrap(), instr);
        }
    }

    /// Simulated cycles are at least instructions/issue-width and the
    /// stall accounting never exceeds total cycles.
    #[test]
    fn simulator_invariants_on_synthetic_traces(
        seed in any::<u64>(),
        loads in 0.0f64..0.35,
        branches in 0.0f64..0.25,
        seq in 0.0f64..1.0,
    ) {
        let trace = SyntheticConfig {
            instructions: 5_000,
            load_fraction: loads,
            store_fraction: 0.1,
            branch_fraction: branches,
            sequential_data_prob: seq,
            seed,
            ..Default::default()
        };
        for issue in [IssueWidth::Single, IssueWidth::Dual] {
            let cfg = MachineModel::Baseline.config(issue, LatencyModel::Fixed(17));
            let stats = simulate(&cfg, trace.generate());
            prop_assert_eq!(stats.instructions, 5_000);
            let floor = 5_000 / issue.width() as u64;
            prop_assert!(stats.cycles >= floor, "cycles {} < floor {floor}", stats.cycles);
            prop_assert!(stats.stalls.total() <= stats.cycles);
            let s = stats.icache;
            prop_assert_eq!(s.hits + s.misses, s.accesses);
            let d = stats.dcache;
            prop_assert_eq!(d.hits + d.misses, d.accesses);
        }
    }

    /// Dual issue never runs more cycles than single issue on the same
    /// trace and configuration.
    #[test]
    fn dual_issue_never_slower(seed in any::<u64>()) {
        let trace = SyntheticConfig {
            instructions: 4_000,
            seed,
            ..Default::default()
        };
        let single = simulate(
            &MachineModel::Baseline.config(IssueWidth::Single, LatencyModel::Fixed(17)),
            trace.generate(),
        );
        let dual = simulate(
            &MachineModel::Baseline.config(IssueWidth::Dual, LatencyModel::Fixed(17)),
            trace.generate(),
        );
        prop_assert!(dual.cycles <= single.cycles + 8,
            "dual {} vs single {}", dual.cycles, single.cycles);
    }

    /// A larger machine (more of everything) never loses badly to a
    /// smaller one on the same trace.
    #[test]
    fn bigger_machine_is_not_much_worse(seed in any::<u64>()) {
        let trace = SyntheticConfig {
            instructions: 4_000,
            load_fraction: 0.3,
            seed,
            ..Default::default()
        };
        let small = simulate(
            &MachineModel::Small.config(IssueWidth::Dual, LatencyModel::Fixed(17)),
            trace.generate(),
        );
        let large = simulate(
            &MachineModel::Large.config(IssueWidth::Dual, LatencyModel::Fixed(17)),
            trace.generate(),
        );
        prop_assert!(
            (large.cycles as f64) <= small.cycles as f64 * 1.05,
            "large {} vs small {}", large.cycles, small.cycles
        );
    }
}

/// The emulator's branch-delay-slot semantics feed the simulator a trace
/// where the delay-slot instruction follows every taken branch.
#[test]
fn delay_slots_visible_in_trace() {
    let program = Assembler::new()
        .assemble(
            r#"
            .text
                li $t0, 50
            loop:
                addiu $t0, $t0, -1
                bgtz $t0, loop
                addiu $t1, $t1, 1    # delay slot, always executes
                break
            "#,
        )
        .unwrap();
    let mut emu = Emulator::new(&program);
    let mut prev_branch_pc = None;
    let mut delay_checks = 0;
    emu.run_traced(10_000, |op| {
        if let Some(bpc) = prev_branch_pc.take() {
            assert_eq!(op.pc, bpc + 4, "delay slot must follow its branch");
            delay_checks += 1;
        }
        if matches!(op.kind, OpKind::Branch { .. }) {
            prev_branch_pc = Some(op.pc);
        }
    })
    .unwrap();
    assert_eq!(delay_checks, 50);
    assert_eq!(
        emu.reg(Reg::T1),
        50,
        "delay slot executed on every iteration"
    );
}

/// Trace statistics from a kernel agree with a recount of the trace.
#[test]
fn workload_stats_agree_with_trace() {
    use aurora3::isa::TraceStats;
    let w = aurora3::workloads::IntBenchmark::Sc.workload(aurora3::workloads::Scale::Test);
    let trace = w.trace().unwrap();
    let mut recount = TraceStats::default();
    for op in &trace.ops {
        recount.record(op);
    }
    assert_eq!(recount, trace.stats);
}
