//! The packed-trace engine's contract, end to end:
//!
//! 1. any `TraceOp` — every kind, register and width — survives the
//!    16-byte `PackedOp` round trip unchanged (property test), and
//! 2. replaying a workload's packed capture produces `SimStats`
//!    bit-identical to streaming the live emulator into the simulator,
//!    for every kernel in both suites.

use aurora3::core::{replay, IssueWidth, MachineModel, SimStats, Simulator};
use aurora3::isa::{ArchReg, MemWidth, OpKind, PackedOp, PackedTrace, TraceOp};
use aurora3::mem::LatencyModel;
use aurora3::workloads::{FpBenchmark, IntBenchmark, Scale, Workload};
use proptest::prelude::*;

/// Decodes a generated selector into a register operand; covers `None`
/// and all four `ArchReg` shapes.
fn reg_from(sel: u8) -> Option<ArchReg> {
    match sel % 67 {
        0 => None,
        v @ 1..=32 => Some(ArchReg::Int(v - 1)),
        v @ 33..=64 => Some(ArchReg::Fp(v - 33)),
        65 => Some(ArchReg::HiLo),
        _ => Some(ArchReg::FpCond),
    }
}

fn width_from(sel: u8) -> MemWidth {
    match sel % 4 {
        0 => MemWidth::Byte,
        1 => MemWidth::Half,
        2 => MemWidth::Word,
        _ => MemWidth::Double,
    }
}

/// Decodes a generated selector into an `OpKind`; covers all 19 kinds,
/// including every memory width and both branch/jump flag settings.
fn kind_from(sel: u8, payload: u32, aux: u8) -> OpKind {
    let width = width_from(aux);
    match sel % 19 {
        0 => OpKind::IntAlu,
        1 => OpKind::IntMul,
        2 => OpKind::IntDiv,
        3 => OpKind::Load { ea: payload, width },
        4 => OpKind::Store { ea: payload, width },
        5 => OpKind::FpLoad { ea: payload, width },
        6 => OpKind::FpStore { ea: payload, width },
        7 => OpKind::Branch {
            taken: aux & 1 != 0,
            target: payload,
        },
        8 => OpKind::Jump {
            target: payload,
            register: aux & 1 != 0,
        },
        9 => OpKind::FpAdd,
        10 => OpKind::FpMul,
        11 => OpKind::FpDiv,
        12 => OpKind::FpSqrt,
        13 => OpKind::FpCvt,
        14 => OpKind::FpMove,
        15 => OpKind::FpCmp,
        _ => OpKind::Nop,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// `TraceOp` -> `PackedOp` -> `TraceOp` is the identity for every
    /// combination of kind, payload, flags and register operands.
    #[test]
    fn packed_op_round_trips(
        pc in any::<u32>(),
        kind_sel in any::<u8>(),
        payload in any::<u32>(),
        aux in any::<u8>(),
        dst in any::<u8>(),
        src1 in any::<u8>(),
        src2 in any::<u8>(),
    ) {
        let op = TraceOp {
            pc,
            kind: kind_from(kind_sel, payload, aux),
            dst: reg_from(dst),
            src1: reg_from(src1),
            src2: reg_from(src2),
        };
        prop_assert_eq!(PackedOp::pack(&op).unpack(), op);
    }

    /// A whole vector of ops survives `PackedTrace` collection, and the
    /// running statistics match a recount.
    #[test]
    fn packed_trace_round_trips(seeds in proptest::collection::vec(any::<u64>(), 1..200)) {
        let ops: Vec<TraceOp> = seeds
            .iter()
            .map(|&s| TraceOp {
                pc: (s >> 32) as u32,
                kind: kind_from((s >> 8) as u8, s as u32, (s >> 16) as u8),
                dst: reg_from((s >> 24) as u8),
                src1: reg_from((s >> 40) as u8),
                src2: reg_from((s >> 48) as u8),
            })
            .collect();
        let packed: PackedTrace = ops.iter().copied().collect();
        prop_assert_eq!(packed.len(), ops.len());
        let back: Vec<TraceOp> = packed.iter().collect();
        prop_assert_eq!(back, ops);
        prop_assert_eq!(packed.stats().total, ops.len() as u64);
    }
}

fn streamed(cfg_model: MachineModel, w: &Workload) -> SimStats {
    let cfg = cfg_model.config(IssueWidth::Dual, LatencyModel::Fixed(17));
    let mut sim = Simulator::new(&cfg);
    w.run_traced(|op| sim.feed(op)).expect("kernel runs");
    sim.finish()
}

fn replayed(cfg_model: MachineModel, w: &Workload) -> SimStats {
    let cfg = cfg_model.config(IssueWidth::Dual, LatencyModel::Fixed(17));
    replay(&cfg, &w.capture().expect("kernel captures"))
}

/// Every kernel in both suites replays its packed capture to
/// bit-identical statistics — the engine's core acceptance criterion.
#[test]
fn all_kernels_replay_bit_identically() {
    let mut workloads: Vec<Workload> = IntBenchmark::ALL
        .into_iter()
        .map(|b| b.workload(Scale::Test))
        .collect();
    workloads.extend(
        FpBenchmark::ALL
            .into_iter()
            .map(|b| b.workload(Scale::Test)),
    );
    assert_eq!(workloads.len(), 15);
    for w in &workloads {
        assert_eq!(
            streamed(MachineModel::Baseline, w),
            replayed(MachineModel::Baseline, w),
            "{} diverged under replay",
            w.name()
        );
    }
}

/// The doubleword FP variants (same names, different programs) also
/// replay identically — they must not alias their single-word captures.
#[test]
fn doubleword_variants_replay_bit_identically() {
    for b in [FpBenchmark::Alvinn, FpBenchmark::Nasa7] {
        let w = b.workload_doubleword(Scale::Test);
        assert_eq!(
            streamed(MachineModel::Large, &w),
            replayed(MachineModel::Large, &w),
            "{} (doubleword) diverged under replay",
            w.name()
        );
    }
}
