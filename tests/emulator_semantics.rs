//! Differential tests of the functional emulator: every ALU operation is
//! checked against Rust's own arithmetic on randomised operands, using
//! single-instruction programs built through the public API.

use aurora3::isa::{Emulator, Instruction, Opcode, ProgramBuilder, Reg};
use proptest::prelude::*;

/// Runs one R-type ALU instruction on the given operand values and
/// returns the destination register.
fn run_alu_r(op: Opcode, a: u32, b: u32) -> u32 {
    let mut builder = ProgramBuilder::new();
    builder.load_imm(Reg::T0, a as i32);
    builder.load_imm(Reg::T1, b as i32);
    builder.push(Instruction::alu_r(op, Reg::T2, Reg::T0, Reg::T1));
    builder.push(Instruction::system(Opcode::Break));
    let program = builder.build();
    let mut emu = Emulator::new(&program);
    emu.run(100).unwrap();
    emu.reg(Reg::T2)
}

fn run_shift(op: Opcode, v: u32, sh: u8) -> u32 {
    let mut builder = ProgramBuilder::new();
    builder.load_imm(Reg::T0, v as i32);
    builder.push(Instruction::shift(op, Reg::T2, Reg::T0, sh));
    builder.push(Instruction::system(Opcode::Break));
    let program = builder.build();
    let mut emu = Emulator::new(&program);
    emu.run(100).unwrap();
    emu.reg(Reg::T2)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn alu_r_semantics(a in any::<u32>(), b in any::<u32>()) {
        prop_assert_eq!(run_alu_r(Opcode::Addu, a, b), a.wrapping_add(b));
        prop_assert_eq!(run_alu_r(Opcode::Subu, a, b), a.wrapping_sub(b));
        prop_assert_eq!(run_alu_r(Opcode::And, a, b), a & b);
        prop_assert_eq!(run_alu_r(Opcode::Or, a, b), a | b);
        prop_assert_eq!(run_alu_r(Opcode::Xor, a, b), a ^ b);
        prop_assert_eq!(run_alu_r(Opcode::Nor, a, b), !(a | b));
        prop_assert_eq!(run_alu_r(Opcode::Slt, a, b), ((a as i32) < (b as i32)) as u32);
        prop_assert_eq!(run_alu_r(Opcode::Sltu, a, b), (a < b) as u32);
    }

    #[test]
    fn shift_semantics(v in any::<u32>(), sh in 0u8..32) {
        prop_assert_eq!(run_shift(Opcode::Sll, v, sh), v << sh);
        prop_assert_eq!(run_shift(Opcode::Srl, v, sh), v >> sh);
        prop_assert_eq!(run_shift(Opcode::Sra, v, sh), ((v as i32) >> sh) as u32);
    }

    #[test]
    fn mult_div_semantics(a in any::<i32>(), b in any::<i32>()) {
        let mut builder = ProgramBuilder::new();
        builder.load_imm(Reg::T0, a);
        builder.load_imm(Reg::T1, b);
        builder.push(Instruction::mul_div(Opcode::Mult, Reg::T0, Reg::T1));
        builder.push(Instruction::hi_lo(Opcode::Mflo, Reg::T2));
        builder.push(Instruction::hi_lo(Opcode::Mfhi, Reg::T3));
        builder.push(Instruction::system(Opcode::Break));
        let program = builder.build();
        let mut emu = Emulator::new(&program);
        emu.run(100).unwrap();
        let product = i64::from(a) * i64::from(b);
        prop_assert_eq!(emu.reg(Reg::T2), product as u32);
        prop_assert_eq!(emu.reg(Reg::T3), (product >> 32) as u32);
    }

    #[test]
    fn memory_round_trips(value in any::<u32>(), slot in 0u32..64) {
        let mut builder = ProgramBuilder::new();
        let buf = builder.data_space(256);
        builder.load_data_addr(Reg::S0, buf);
        builder.load_imm(Reg::T0, value as i32);
        builder.push(Instruction::mem(Opcode::Sw, Reg::T0, Reg::S0, (slot * 4) as i16));
        builder.push(Instruction::mem(Opcode::Lw, Reg::T1, Reg::S0, (slot * 4) as i16));
        builder.push(Instruction::mem(Opcode::Lb, Reg::T2, Reg::S0, (slot * 4) as i16));
        builder.push(Instruction::mem(Opcode::Lbu, Reg::T3, Reg::S0, (slot * 4) as i16));
        builder.push(Instruction::mem(Opcode::Lhu, Reg::T4, Reg::S0, (slot * 4) as i16));
        builder.push(Instruction::system(Opcode::Break));
        let program = builder.build();
        let mut emu = Emulator::new(&program);
        emu.run(100).unwrap();
        prop_assert_eq!(emu.reg(Reg::T1), value);
        prop_assert_eq!(emu.reg(Reg::T2), value as u8 as i8 as i32 as u32);
        prop_assert_eq!(emu.reg(Reg::T3), u32::from(value as u8));
        prop_assert_eq!(emu.reg(Reg::T4), u32::from(value as u16));
    }

    #[test]
    fn fp_double_arithmetic(a in -1.0e6f64..1.0e6, b in 0.5f64..1.0e6) {
        use aurora3::isa::Assembler;
        let src = format!(
            r#"
            .data
            .align 3
            vals: .double {a:.10}, {b:.10}
            out: .space 32
            .text
                la   $t0, vals
                ldc1 $f2, 0($t0)
                ldc1 $f4, 8($t0)
                add.d $f6, $f2, $f4
                mul.d $f8, $f2, $f4
                div.d $f10, $f2, $f4
                sub.d $f12, $f2, $f4
                break
            "#
        );
        let program = Assembler::new().assemble(&src).unwrap();
        let mut emu = Emulator::new(&program);
        emu.run(1000).unwrap();
        let f = |n: u8| emu.freg_double(aurora3::isa::FReg::new(n).unwrap());
        // Text formatting rounds the inputs; compare against the parsed
        // values the program actually saw.
        let pa = f(2);
        let pb = f(4);
        prop_assert_eq!(f(6), pa + pb);
        prop_assert_eq!(f(8), pa * pb);
        prop_assert_eq!(f(10), pa / pb);
        prop_assert_eq!(f(12), pa - pb);
    }
}

/// Immediate-operand instructions: zero vs sign extension rules.
#[test]
fn immediate_extension_rules() {
    let run = |op: Opcode, base: i32, imm: i16| -> u32 {
        let mut b = ProgramBuilder::new();
        b.load_imm(Reg::T0, base);
        b.push(Instruction::alu_i(op, Reg::T1, Reg::T0, imm));
        b.push(Instruction::system(Opcode::Break));
        let p = b.build();
        let mut emu = Emulator::new(&p);
        emu.run(100).unwrap();
        emu.reg(Reg::T1)
    };
    // addiu sign-extends.
    assert_eq!(run(Opcode::Addiu, 10, -3), 7);
    // andi/ori/xori zero-extend.
    assert_eq!(run(Opcode::Andi, -1, -1), 0x0000_FFFF);
    assert_eq!(run(Opcode::Ori, 0, -1), 0x0000_FFFF);
    assert_eq!(run(Opcode::Xori, 0x00FF, 0x0F0Fu16 as i16), 0x0FF0);
    // slti compares sign-extended; sltiu compares the sign-extended
    // immediate as unsigned.
    assert_eq!(run(Opcode::Slti, -5, -3), 1);
    assert_eq!(
        run(Opcode::Sltiu, 5, -1),
        1,
        "0xFFFFFFFF as unsigned is huge"
    );
}

/// Variable shifts mask the shift amount to five bits, as on real MIPS.
#[test]
fn variable_shifts_mask_amount() {
    let mut b = ProgramBuilder::new();
    b.load_imm(Reg::T0, 1);
    b.load_imm(Reg::T1, 33); // 33 & 31 == 1
    b.push(Instruction::shift_v(
        Opcode::Sllv,
        Reg::T2,
        Reg::T0,
        Reg::T1,
    ));
    b.push(Instruction::system(Opcode::Break));
    let p = b.build();
    let mut emu = Emulator::new(&p);
    emu.run(100).unwrap();
    assert_eq!(emu.reg(Reg::T2), 2);
}
