//! Golden-value regression tests: exact cycle counts for pinned
//! configurations and workloads. Any intentional change to the timing
//! model must update these values (and explain the shift in the commit);
//! an unintentional change fails here first. This is standard practice
//! for cycle-level simulators.

use aurora3::core::{IssueWidth, MachineModel, Simulator};
use aurora3::mem::LatencyModel;
use aurora3::workloads::{synthetic::SyntheticConfig, FpBenchmark, IntBenchmark, Scale};

// Values regenerated against the vendored offline `rand` stub (see
// vendor/rand): instruction counts and the su2cor row are bit-identical
// to the original registry crate, and the remaining cycle counts moved
// by <=1.5% from residual differences in derived data addresses.
//
// Columns: cycles, instructions, I-cache hits, I-cache misses. The
// I-cache columns pin the front end's probe behaviour exactly — the
// slot-indexed `DecodedICache` and the event-horizon issue loop must
// probe the same pairs the original per-cycle HashMap walk did.
const GOLDEN: &[(&str, u64, u64, u64, u64)] = &[
    ("eqntott-small-single", 1_567_393, 575_330, 251_432, 56_739),
    ("eqntott-base-dual", 1_048_859, 575_330, 267_705, 40_466),
    ("eqntott-large-dual", 610_299, 575_330, 308_067, 104),
    ("su2cor-base-dual", 216_733, 98_386, 49_195, 5),
    ("synthetic-base-dual", 102_388, 20_000, 9_251, 2_063),
];

fn lookup(name: &str) -> (u64, u64, u64, u64) {
    let (_, c, i, ih, im) = GOLDEN.iter().find(|(n, ..)| *n == name).unwrap();
    (*c, *i, *ih, *im)
}

#[test]
fn integer_kernel_goldens() {
    for (name, model, issue) in [
        (
            "eqntott-small-single",
            MachineModel::Small,
            IssueWidth::Single,
        ),
        (
            "eqntott-base-dual",
            MachineModel::Baseline,
            IssueWidth::Dual,
        ),
        ("eqntott-large-dual", MachineModel::Large, IssueWidth::Dual),
    ] {
        let cfg = model.config(issue, LatencyModel::Fixed(17));
        let w = IntBenchmark::Eqntott.workload(Scale::Test);
        let mut sim = Simulator::new(&cfg);
        w.run_traced(|op| sim.feed(op)).unwrap();
        let s = sim.finish();
        let (cycles, instructions, ic_hits, ic_misses) = lookup(name);
        assert_eq!((s.cycles, s.instructions), (cycles, instructions), "{name}");
        assert_eq!(
            (s.icache.hits, s.icache.misses),
            (ic_hits, ic_misses),
            "{name} icache"
        );
    }
}

#[test]
fn fp_kernel_golden() {
    let cfg = MachineModel::Baseline.config(IssueWidth::Dual, LatencyModel::Fixed(17));
    let w = FpBenchmark::Su2cor.workload(Scale::Test);
    let mut sim = Simulator::new(&cfg);
    w.run_traced(|op| sim.feed(op)).unwrap();
    let s = sim.finish();
    let (cycles, instructions, ic_hits, ic_misses) = lookup("su2cor-base-dual");
    assert_eq!((s.cycles, s.instructions), (cycles, instructions));
    assert_eq!((s.icache.hits, s.icache.misses), (ic_hits, ic_misses));
}

#[test]
fn synthetic_golden() {
    let cfg = MachineModel::Baseline.config(IssueWidth::Dual, LatencyModel::Fixed(17));
    let syn = SyntheticConfig {
        instructions: 20_000,
        ..Default::default()
    };
    let mut sim = Simulator::new(&cfg);
    for op in syn.generate() {
        sim.feed(op);
    }
    let s = sim.finish();
    let (cycles, instructions, ic_hits, ic_misses) = lookup("synthetic-base-dual");
    assert_eq!((s.cycles, s.instructions), (cycles, instructions));
    assert_eq!((s.icache.hits, s.icache.misses), (ic_hits, ic_misses));
}
