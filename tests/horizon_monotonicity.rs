//! Regression guard for the event-horizon monotonicity invariant.
//!
//! `next_event_cycle()` reports the earliest cycle at which any unit can
//! make progress. While the machine is quiescent — the clock unchanged
//! and no instruction issued since the last call — repeated calls must
//! never move the horizon *backward*: the skip loop trusts the horizon
//! to jump the clock, and a backward step would either livelock the loop
//! or skip work a unit had already promised.
//!
//! The simulator carries a debug-only probe (`horizon_probe` in
//! `crates/core/src/sim.rs`) that `debug_assert!`s this on every call and
//! is invalidated whenever an instruction issues. This test's job is to
//! make that probe bite on a regression: it drives the simulator across
//! every machine model, both issue widths, and resource-starved
//! configurations whose long stall regions maximize quiescent
//! `next_event_cycle()` traffic.
//!
//! The whole file is compiled out under `--release`: the probe it
//! exercises only exists with `debug_assertions` on.
#![cfg(debug_assertions)]

use aurora3::core::{replay, IssueWidth, MachineConfig, MachineModel};
use aurora3::mem::LatencyModel;
use aurora3::workloads::{FpBenchmark, IntBenchmark, Scale, Workload};

fn suite() -> Vec<Workload> {
    let mut workloads: Vec<Workload> = IntBenchmark::ALL
        .into_iter()
        .map(|b| b.workload(Scale::Test))
        .collect();
    workloads.extend(
        FpBenchmark::ALL
            .into_iter()
            .map(|b| b.workload(Scale::Test)),
    );
    workloads
}

/// Every model and issue width at both paper latencies: the horizon probe
/// asserts monotonicity on every `next_event_cycle()` call along the way.
#[test]
fn horizon_never_moves_backward_across_models() {
    for w in &suite() {
        let trace = w.capture().expect("kernel captures");
        for model in MachineModel::ALL {
            for issue in [IssueWidth::Single, IssueWidth::Dual] {
                for latency in [17u32, 35] {
                    let cfg = model.config(issue, LatencyModel::Fixed(latency));
                    let stats = replay(&cfg, &trace);
                    assert!(stats.cycles > 0, "{} produced no cycles", w.name());
                }
            }
        }
    }
}

/// Resource starvation (1 MSHR, 1 write-cache line, 1 ROB entry, minimal
/// FPU queues, long memory latency) maximizes time spent in quiescent
/// stall regions, where the skip loop leans hardest on the horizon.
#[test]
fn horizon_monotonic_under_resource_starvation() {
    let mut cfg: MachineConfig =
        MachineModel::Small.config(IssueWidth::Dual, LatencyModel::Fixed(100));
    cfg.mshr_entries = 1;
    cfg.write_cache_lines = 1;
    cfg.rob_entries = 1;
    cfg.prefetch_buffers = 1;
    cfg.prefetch_depth = 1;
    cfg.fpu.instr_queue = 1;
    cfg.fpu.load_queue = 1;
    cfg.fpu.store_queue = 1;
    cfg.fpu.rob_entries = 1;
    cfg.fpu.result_busses = 1;
    cfg.validate().expect("starved config is still valid");
    for w in &suite() {
        let trace = w.capture().expect("kernel captures");
        let stats = replay(&cfg, &trace);
        assert!(
            stats.cycles >= stats.instructions,
            "{} impossible CPI",
            w.name()
        );
    }
}

/// A jittered (seeded-uniform) memory latency shuffles completion times
/// relative to the fixed-latency runs, probing horizon ordering under a
/// different event interleaving per seed.
#[test]
fn horizon_monotonic_with_latency_spread() {
    for seed in [1u64, 42] {
        let mut cfg = MachineModel::Baseline
            .config(IssueWidth::Dual, LatencyModel::Uniform { lo: 9, hi: 25 });
        cfg.seed = seed;
        for w in &suite() {
            let trace = w.capture().expect("kernel captures");
            let stats = replay(&cfg, &trace);
            assert!(stats.cycles > 0, "{} produced no cycles", w.name());
        }
    }
}
