//! Integration tests asserting the paper's headline findings hold on the
//! full pipeline: kernels -> emulator -> trace -> cycle simulator.
//!
//! These encode *shape*, not absolute numbers (see EXPERIMENTS.md).

use aurora3::core::{
    simulate, FpIssuePolicy, IssueWidth, MachineConfig, MachineModel, SimStats, Simulator,
    StallKind,
};
use aurora3::mem::LatencyModel;
use aurora3::workloads::{FpBenchmark, IntBenchmark, Scale};

fn run(cfg: &MachineConfig, bench: IntBenchmark) -> SimStats {
    let w = bench.workload(Scale::Test);
    let mut sim = Simulator::new(cfg);
    w.run_traced(|op| sim.feed(op)).expect("kernel runs");
    sim.finish()
}

fn suite_avg_cpi(cfg: &MachineConfig) -> f64 {
    let total: f64 = IntBenchmark::ALL.iter().map(|&b| run(cfg, b).cpi()).sum();
    total / IntBenchmark::ALL.len() as f64
}

fn cfg(model: MachineModel, issue: IssueWidth, latency: u32) -> MachineConfig {
    model.config(issue, LatencyModel::Fixed(latency))
}

/// §5.1 / Figure 4: bigger models are faster; dual issue helps the
/// baseline and large models at short latency.
#[test]
fn models_order_and_dual_issue_gains() {
    let small = suite_avg_cpi(&cfg(MachineModel::Small, IssueWidth::Dual, 17));
    let base = suite_avg_cpi(&cfg(MachineModel::Baseline, IssueWidth::Dual, 17));
    let large = suite_avg_cpi(&cfg(MachineModel::Large, IssueWidth::Dual, 17));
    assert!(small > base && base > large, "{small} {base} {large}");

    let base_single = suite_avg_cpi(&cfg(MachineModel::Baseline, IssueWidth::Single, 17));
    assert!(
        base < base_single,
        "dual must beat single on baseline at L17"
    );
}

/// §5.1: the single-issue baseline outperforms the dual-issue small model
/// at similar hardware cost.
#[test]
fn single_baseline_beats_dual_small() {
    let base_single = suite_avg_cpi(&cfg(MachineModel::Baseline, IssueWidth::Single, 17));
    let small_dual = suite_avg_cpi(&cfg(MachineModel::Small, IssueWidth::Dual, 17));
    assert!(base_single < small_dual, "{base_single} vs {small_dual}");
    let cost_base = aurora3::cost::ipu_cost(&cfg(MachineModel::Baseline, IssueWidth::Single, 17));
    let cost_small = aurora3::cost::ipu_cost(&cfg(MachineModel::Small, IssueWidth::Dual, 17));
    let ratio = cost_base.as_f64() / cost_small.as_f64();
    assert!((0.8..1.25).contains(&ratio), "similar cost: {ratio}");
}

/// §4.2 / Figure 4: longer memory latency raises CPI everywhere and makes
/// dual issue less attractive.
#[test]
fn longer_latency_hurts_and_narrows_dual_gain() {
    let base17d = suite_avg_cpi(&cfg(MachineModel::Baseline, IssueWidth::Dual, 17));
    let base35d = suite_avg_cpi(&cfg(MachineModel::Baseline, IssueWidth::Dual, 35));
    assert!(base35d > base17d);

    let base17s = suite_avg_cpi(&cfg(MachineModel::Baseline, IssueWidth::Single, 17));
    let base35s = suite_avg_cpi(&cfg(MachineModel::Baseline, IssueWidth::Single, 35));
    let gain17 = (base17s - base17d) / base17s;
    let gain35 = (base35s - base35d) / base35s;
    assert!(
        gain35 < gain17 + 0.02,
        "dual gain should not grow with latency: {gain17} -> {gain35}"
    );
}

/// §5.2 / Figure 5: prefetching helps the baseline model substantially.
#[test]
fn prefetch_benefits_baseline() {
    let with = cfg(MachineModel::Baseline, IssueWidth::Dual, 17);
    let mut without = with.clone();
    without.prefetch_enabled = false;
    let c_with = suite_avg_cpi(&with);
    let c_without = suite_avg_cpi(&without);
    let gain = (c_without - c_with) / c_without;
    assert!(gain > 0.05, "baseline prefetch gain {gain}");
}

/// §5.2: prefetching helps more at 35-cycle latency than at 17.
#[test]
fn prefetch_helps_more_at_long_latency() {
    let gain = |latency: u32| -> f64 {
        let with = cfg(MachineModel::Baseline, IssueWidth::Dual, latency);
        let mut without = with.clone();
        without.prefetch_enabled = false;
        let cw = suite_avg_cpi(&with);
        let co = suite_avg_cpi(&without);
        (co - cw) / co
    };
    assert!(gain(35) > gain(17), "{} vs {}", gain(35), gain(17));
}

/// §5.4 / Figure 7: the small model improves markedly with a second MSHR;
/// no model gets worse with more.
#[test]
fn mshrs_help_monotonically() {
    for model in MachineModel::ALL {
        let mut prev = f64::INFINITY;
        for mshrs in 1..=4usize {
            let mut c = cfg(model, IssueWidth::Dual, 17);
            c.mshr_entries = mshrs;
            let cpi = suite_avg_cpi(&c);
            assert!(
                cpi <= prev * 1.01,
                "{model}: {mshrs} MSHRs worsened {prev} -> {cpi}"
            );
            prev = cpi;
        }
    }
    let mut one = cfg(MachineModel::Small, IssueWidth::Dual, 17);
    one.mshr_entries = 1;
    let mut two = one.clone();
    two.mshr_entries = 2;
    let gain = (suite_avg_cpi(&one) - suite_avg_cpi(&two)) / suite_avg_cpi(&one);
    assert!(gain > 0.01, "small model second MSHR gain {gain}");
}

/// §5.5 / Table 5: write-cache hit rate rises and store traffic falls
/// from the small to the large model.
#[test]
fn write_cache_improves_with_size() {
    let stats = |model: MachineModel| -> (f64, f64) {
        let c = cfg(model, IssueWidth::Dual, 17);
        let mut hit = 0.0;
        let mut traffic = 0.0;
        for &b in &IntBenchmark::ALL {
            let s = run(&c, b);
            hit += s.write_cache.hit_rate();
            traffic += s.write_cache.traffic_ratio();
        }
        let n = IntBenchmark::ALL.len() as f64;
        (hit / n, traffic / n)
    };
    let (small_hit, small_traffic) = stats(MachineModel::Small);
    let (large_hit, large_traffic) = stats(MachineModel::Large);
    assert!(large_hit > small_hit, "{small_hit} -> {large_hit}");
    assert!(
        large_traffic < small_traffic,
        "{small_traffic} -> {large_traffic}"
    );
    // The write cache cuts traffic to well under half of store count.
    assert!(large_traffic < 0.5, "{large_traffic}");
}

/// §5.3 / Figure 6: load stalls from the 3-cycle pipelined data cache
/// dominate the large model; instruction stalls fade as the I$ grows.
#[test]
fn stall_structure_matches_figure6() {
    let breakdown = |model: MachineModel| -> (f64, f64) {
        let c = cfg(model, IssueWidth::Dual, 17);
        let mut icache = 0.0;
        let mut load = 0.0;
        for &b in &IntBenchmark::ALL {
            let s = run(&c, b);
            icache += s.stall_cpi(StallKind::ICache);
            load += s.stall_cpi(StallKind::Load);
        }
        let n = IntBenchmark::ALL.len() as f64;
        (icache / n, load / n)
    };
    let (small_icache, _) = breakdown(MachineModel::Small);
    let (large_icache, large_load) = breakdown(MachineModel::Large);
    assert!(small_icache > large_icache, "I$ stalls shrink with size");
    assert!(
        large_load > large_icache,
        "large model dominated by load stalls"
    );
}

/// §5.8 / Table 6: out-of-order completion beats in-order completion on
/// the FP suite; dual issue never loses to single.
#[test]
fn fpu_policies_order() {
    let avg = |policy: FpIssuePolicy| -> f64 {
        let mut total = 0.0;
        for b in FpBenchmark::ALL {
            let w = b.workload(Scale::Test);
            let mut c = cfg(MachineModel::Baseline, IssueWidth::Dual, 17);
            c.fpu.issue_policy = policy;
            let mut sim = Simulator::new(&c);
            w.run_traced(|op| sim.feed(op)).expect("kernel runs");
            total += sim.finish().cpi();
        }
        total / FpBenchmark::ALL.len() as f64
    };
    let in_order = avg(FpIssuePolicy::InOrderComplete);
    let single = avg(FpIssuePolicy::OutOfOrderSingle);
    let dual = avg(FpIssuePolicy::OutOfOrderDual);
    assert!(single < in_order * 0.95, "{in_order} -> {single}");
    assert!(dual <= single + 1e-9, "{single} -> {dual}");
}

/// §5.10: functional-unit latency has a modest CPI impact — shorter is
/// better, monotonically.
#[test]
fn fp_latency_monotone() {
    let avg = |mutator: &dyn Fn(&mut MachineConfig)| -> f64 {
        let mut total = 0.0;
        for b in [FpBenchmark::Nasa7, FpBenchmark::Su2cor, FpBenchmark::Ear] {
            let w = b.workload(Scale::Test);
            let mut c = cfg(MachineModel::Baseline, IssueWidth::Dual, 17);
            c.fpu.issue_policy = FpIssuePolicy::OutOfOrderSingle;
            mutator(&mut c);
            let mut sim = Simulator::new(&c);
            w.run_traced(|op| sim.feed(op)).expect("kernel runs");
            total += sim.finish().cpi();
        }
        total / 3.0
    };
    let mut prev = 0.0;
    for lat in [1u32, 3, 5] {
        let cpi = avg(&|c: &mut MachineConfig| c.fpu.mul_latency = lat);
        assert!(cpi >= prev - 1e-9, "mul latency {lat}: {prev} -> {cpi}");
        prev = cpi;
    }
}

/// §5.9 extension: double-word FP loads never run more cycles than the
/// two-32-bit-loads condition.
#[test]
fn doubleword_loads_save_cycles() {
    let c = cfg(MachineModel::Baseline, IssueWidth::Dual, 17);
    for b in [
        FpBenchmark::Alvinn,
        FpBenchmark::Hydro2d,
        FpBenchmark::Su2cor,
    ] {
        let sw = {
            let w = b.workload(Scale::Test);
            let mut sim = Simulator::new(&c);
            w.run_traced(|op| sim.feed(op)).unwrap();
            sim.finish()
        };
        let dw = {
            let w = b.workload_doubleword(Scale::Test);
            let mut sim = Simulator::new(&c);
            w.run_traced(|op| sim.feed(op)).unwrap();
            sim.finish()
        };
        assert!(
            dw.cycles <= sw.cycles,
            "{b:?}: doubleword {} vs singleword {}",
            dw.cycles,
            sw.cycles
        );
    }
}

/// Cross-check: the base-model cache hit rates land near the paper's §5
/// anchors (I$ 96.5%, D$ 95.4% — we accept a generous band since the
/// workloads are synthetic).
#[test]
fn baseline_hit_rates_near_anchors() {
    let c = cfg(MachineModel::Baseline, IssueWidth::Dual, 17);
    let mut icache = 0.0;
    let mut dcache = 0.0;
    for &b in &IntBenchmark::ALL {
        let s = run(&c, b);
        icache += s.icache.hit_rate();
        dcache += s.dcache.hit_rate();
    }
    let n = IntBenchmark::ALL.len() as f64;
    let (icache, dcache) = (icache / n, dcache / n);
    assert!((0.90..=0.995).contains(&icache), "I$ {icache}");
    assert!((0.85..=0.99).contains(&dcache), "D$ {dcache}");
}

/// Determinism: the full pipeline is reproducible run to run.
#[test]
fn end_to_end_deterministic() {
    let c = cfg(MachineModel::Baseline, IssueWidth::Dual, 17);
    let one = run(&c, IntBenchmark::Gcc);
    let two = run(&c, IntBenchmark::Gcc);
    assert_eq!(one.cycles, two.cycles);
    assert_eq!(one.instructions, two.instructions);
    assert_eq!(one.stalls, two.stalls);
}

/// Sanity: CPI bounds hold for every kernel and model.
#[test]
fn cpi_bounds() {
    for model in MachineModel::ALL {
        let c = cfg(model, IssueWidth::Dual, 17);
        for &b in &IntBenchmark::ALL {
            let s = run(&c, b);
            assert!(s.cpi() >= 0.5, "{model}/{b}: CPI {}", s.cpi());
            assert!(s.cpi() < 20.0, "{model}/{b}: CPI {}", s.cpi());
            assert!(s.cycles > 0 && s.instructions > 0);
        }
    }
    let _ = simulate(
        &cfg(MachineModel::Small, IssueWidth::Single, 17),
        std::iter::empty(),
    );
}
