//! End-to-end property: serialising a dynamic trace to the binary `.trc`
//! format and replaying it through the simulator produces *identical*
//! statistics to simulating the live trace — capture and replay are
//! interchangeable, which is the point of trace-driven methodology.

use aurora3::core::{simulate, IssueWidth, MachineModel};
use aurora3::isa::{read_trace, write_trace, TraceOp};
use aurora3::mem::LatencyModel;
use aurora3::workloads::{synthetic::SyntheticConfig, FpBenchmark, IntBenchmark, Scale};

fn round_trip(ops: &[TraceOp]) -> Vec<TraceOp> {
    let mut buf = Vec::new();
    write_trace(&mut buf, ops.iter().copied()).unwrap();
    read_trace(&buf[..])
        .unwrap()
        .collect::<std::io::Result<Vec<_>>>()
        .unwrap()
}

#[test]
fn kernel_trace_replays_identically() {
    let cfg = MachineModel::Baseline.config(IssueWidth::Dual, LatencyModel::Fixed(17));
    for trace in [
        IntBenchmark::Sc.workload(Scale::Test).trace().unwrap().ops,
        FpBenchmark::Ear.workload(Scale::Test).trace().unwrap().ops,
    ] {
        let live = simulate(&cfg, trace.iter().copied());
        let replayed = simulate(&cfg, round_trip(&trace));
        assert_eq!(live.cycles, replayed.cycles);
        assert_eq!(live.instructions, replayed.instructions);
        assert_eq!(live.stalls, replayed.stalls);
        assert_eq!(live.icache, replayed.icache);
        assert_eq!(live.dcache, replayed.dcache);
        assert_eq!(live.write_cache, replayed.write_cache);
        assert_eq!(live.biu, replayed.biu);
    }
}

#[test]
fn synthetic_trace_replays_identically() {
    let cfg = MachineModel::Small.config(IssueWidth::Single, LatencyModel::average_35());
    let syn = SyntheticConfig {
        instructions: 30_000,
        fp_fraction: 0.1,
        load_fraction: 0.25,
        ..Default::default()
    };
    let ops: Vec<TraceOp> = syn.collect();
    let live = simulate(&cfg, ops.iter().copied());
    let replayed = simulate(&cfg, round_trip(&ops));
    assert_eq!(live.cycles, replayed.cycles);
    assert_eq!(live.stalls, replayed.stalls);
}

#[test]
fn trace_file_size_is_predictable() {
    let ops: Vec<TraceOp> = SyntheticConfig {
        instructions: 1000,
        ..Default::default()
    }
    .collect();
    let mut buf = Vec::new();
    write_trace(&mut buf, ops.iter().copied()).unwrap();
    assert_eq!(buf.len(), 16 + 20 * ops.len(), "header + fixed records");
}
