//! Validation of the cycle-event observability layer (`aurora_core::obs`).
//!
//! Three invariants, each over the full 15-kernel suite crossed with all
//! three machine models and both issue widths:
//!
//! 1. **Attribution sum** — every stall cycle the counters charge is
//!    attributed by the event stream to exactly one [`StallCause`]: the
//!    observer's per-cause totals, folded through `StallCause::kind()`,
//!    are *equal* (not approximately) to the counter-based
//!    `SimStats::stalls` breakdown, and their grand totals match.
//! 2. **Zero-cost off** — running with `observe = true` yields
//!    bit-identical `SimStats` to `observe = false`; recording never
//!    perturbs machine state.
//! 3. **Well-formed trace JSON** — `Observer::chrome_trace_json` emits
//!    structurally valid JSON (checked by a small serde-free scanner)
//!    with the trace-event keys Perfetto requires.

use aurora3::core::{replay, IssueWidth, MachineModel, Simulator, StallKind};
use aurora3::mem::LatencyModel;
use aurora3::workloads::{FpBenchmark, IntBenchmark, Scale, TraceStore, Workload};

fn full_suite() -> Vec<Workload> {
    let mut suite: Vec<Workload> = IntBenchmark::ALL
        .into_iter()
        .map(|b| b.workload(Scale::Test))
        .collect();
    suite.extend(
        FpBenchmark::ALL
            .into_iter()
            .map(|b| b.workload(Scale::Test)),
    );
    suite
}

fn grid() -> impl Iterator<Item = (MachineModel, IssueWidth)> {
    MachineModel::ALL
        .into_iter()
        .flat_map(|m| [IssueWidth::Single, IssueWidth::Dual].map(move |w| (m, w)))
}

#[test]
fn every_stall_cycle_attributes_to_exactly_one_cause() {
    for w in full_suite() {
        let trace = TraceStore::global().get(&w).expect("capture");
        for (model, width) in grid() {
            let mut cfg = model.config(width, LatencyModel::Fixed(17));
            cfg.observe = true;
            let mut sim = Simulator::new(&cfg);
            sim.feed_packed(&trace);
            let (stats, obs) = sim.finish_observed();
            let obs = obs.expect("observer attached");

            let ctx = format!("{}/{model}/{width}", w.name());
            assert_eq!(
                obs.stalls_by_kind(),
                stats.stalls,
                "{ctx}: per-kind event attribution != counters"
            );
            assert_eq!(
                obs.total_stall_cycles(),
                stats.stalls.total(),
                "{ctx}: attributed total != counter total"
            );
            // The fine taxonomy partitions the coarse one: each kind's
            // counter is the sum of exactly its causes, so summing the
            // per-cause cells grouped by kind must reproduce each
            // counter — already implied by the equality above — and no
            // cause may be double-counted across kinds.
            let fine_total: u64 = obs.stall_breakdown().map(|(_, c)| c).sum();
            assert_eq!(fine_total, stats.stalls.total(), "{ctx}: causes overlap");
        }
    }
}

#[test]
fn observer_is_invisible_to_simulation_results() {
    for w in full_suite() {
        let trace = TraceStore::global().get(&w).expect("capture");
        for (model, width) in grid() {
            let off = model.config(width, LatencyModel::Fixed(17));
            let mut on = off.clone();
            on.observe = true;
            assert_eq!(
                replay(&on, &trace),
                replay(&off, &trace),
                "{}/{model}/{width}: observe=true changed SimStats",
                w.name()
            );
        }
    }
}

/// Scans `s` as JSON without parsing into a value tree: tracks string /
/// escape state and brace/bracket nesting, rejecting early closers and
/// unterminated strings. Sufficient to catch malformed hand-rolled
/// output (trailing garbage, unbalanced nesting, raw control bytes).
fn assert_well_formed_json(s: &str) {
    let mut depth: Vec<char> = Vec::new();
    let mut in_str = false;
    let mut escaped = false;
    let mut seen_root = false;
    for (i, c) in s.char_indices() {
        if in_str {
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_str = false;
            } else {
                assert!(c >= ' ', "raw control byte {c:?} inside string at {i}");
            }
            continue;
        }
        assert!(
            !(seen_root && depth.is_empty() && !c.is_whitespace()),
            "trailing token `{c}` after root value at byte {i}"
        );
        match c {
            '"' => in_str = true,
            '{' => depth.push('}'),
            '[' => depth.push(']'),
            '}' | ']' => {
                assert_eq!(depth.pop(), Some(c), "unbalanced `{c}` at byte {i}");
                if depth.is_empty() {
                    seen_root = true;
                }
            }
            _ => {}
        }
    }
    assert!(!in_str, "unterminated string");
    assert!(depth.is_empty(), "unclosed nesting: {depth:?}");
    assert!(seen_root, "no JSON value found");
}

#[test]
fn chrome_trace_json_is_well_formed_and_complete() {
    let w = IntBenchmark::Espresso.workload(Scale::Test);
    let trace = TraceStore::global().get(&w).expect("capture");
    let mut cfg = MachineModel::Baseline.config(IssueWidth::Dual, LatencyModel::Fixed(17));
    cfg.observe = true;
    let mut sim = Simulator::new(&cfg);
    sim.feed_packed(&trace);
    let (stats, obs) = sim.finish_observed();
    let obs = obs.expect("observer attached");
    assert!(!obs.is_empty(), "espresso must produce events");

    let json = obs.chrome_trace_json();
    assert_well_formed_json(&json);

    for key in [
        "\"traceEvents\"",
        "\"displayTimeUnit\"",
        "\"ph\":\"M\"",
        "\"thread_name\"",
        "\"ph\":\"X\"",
        "\"ph\":\"i\"",
        "\"ph\":\"C\"",
        "\"dur\":",
        "\"ts\":",
    ] {
        assert!(json.contains(key), "trace JSON lacks {key}");
    }
    // Every stall cause that actually charged cycles must surface as a
    // named slice somewhere in the trace.
    for kind in StallKind::ALL {
        if stats.stalls[kind] > 0 && obs.dropped() == 0 {
            let causes_present = obs
                .stall_breakdown()
                .filter(|&(c, n)| n > 0 && c.kind() == kind)
                .all(|(c, _)| json.contains(c.label()));
            assert!(causes_present, "no slice for any cause of {kind}");
        }
    }
}
