//! Bring your own kernel: write mini-MIPS assembly, trace it, and compare
//! machine models with a full stall-cycle breakdown.
//!
//! The kernel here is an in-place matrix transpose — a classic stride
//! troublemaker for direct-mapped caches.
//!
//! ```text
//! cargo run --release --example custom_workload
//! ```

use aurora3::core::{IssueWidth, MachineModel, Simulator, StallKind};
use aurora3::isa::{Assembler, Emulator};
use aurora3::mem::LatencyModel;

const N: u32 = 64; // 64x64 words = 16 KB

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let source = format!(
        r#"
        .data
        matrix: .space {bytes}
        .text
        main:
            # transpose the upper triangle: swap m[i][j] with m[j][i]
            li   $s0, 0            # i
        rowl:
            addiu $s1, $s0, 1      # j = i + 1
        coll:
            # &m[i][j] = base + (i*N + j) * 4
            sll  $t0, $s0, {shift}
            addu $t0, $t0, $s1
            sll  $t0, $t0, 2
            la   $t1, matrix
            addu $t1, $t1, $t0
            # &m[j][i]
            sll  $t2, $s1, {shift}
            addu $t2, $t2, $s0
            sll  $t2, $t2, 2
            la   $t3, matrix
            addu $t3, $t3, $t2
            lw   $t4, 0($t1)
            lw   $t5, 0($t3)
            sw   $t5, 0($t1)
            sw   $t4, 0($t3)
            addiu $s1, $s1, 1
            li   $t6, {n}
            bne  $s1, $t6, coll
            nop
            addiu $s0, $s0, 1
            li   $t6, {nm1}
            bne  $s0, $t6, rowl
            nop
            break
        "#,
        bytes = N * N * 4,
        shift = N.trailing_zeros(),
        n = N,
        nm1 = N - 1,
    );
    let program = Assembler::new().assemble(&source)?;

    println!("transpose of a {N}x{N} word matrix\n");
    println!(
        "{:<10} {:>8} {:>7} {:>7} {:>7} {:>7} {:>7}",
        "model", "CPI", "D$%", "Load", "LSU", "ROB", "I$"
    );
    for model in MachineModel::ALL {
        let cfg = model.config(IssueWidth::Dual, LatencyModel::Fixed(17));
        let mut sim = Simulator::new(&cfg);
        let mut emu = Emulator::new(&program);
        emu.run_traced(10_000_000, |op| sim.feed(op))?;
        let stats = sim.finish();
        println!(
            "{:<10} {:>8.3} {:>7.2} {:>7.3} {:>7.3} {:>7.3} {:>7.3}",
            model.to_string(),
            stats.cpi(),
            100.0 * stats.dcache.hit_rate(),
            stats.stall_cpi(StallKind::Load),
            stats.stall_cpi(StallKind::LsuBusy),
            stats.stall_cpi(StallKind::RobFull),
            stats.stall_cpi(StallKind::ICache),
        );
    }
    println!("\nThe column-side accesses stride {N} words, so they miss in every");
    println!("model until the working set fits — watch the D$ hit rate climb");
    println!("from the 16 KB small model to the 64 KB large model.");
    Ok(())
}
