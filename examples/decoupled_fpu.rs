//! The decoupled-FPU story of paper §3: run the same FP workload under
//! the three issue policies and across functional-unit latencies.
//!
//! ```text
//! cargo run --release --example decoupled_fpu
//! ```

use aurora3::core::{FpIssuePolicy, IssueWidth, MachineModel, Simulator};
use aurora3::cost::{add_unit_cost, fpu_cost, multiply_unit_cost};
use aurora3::mem::LatencyModel;
use aurora3::workloads::{FpBenchmark, Scale};

fn main() {
    let workload = FpBenchmark::Ear.workload(Scale::Small);
    println!("workload: {workload}\n");

    // 1. Issue policies (Table 6's axis).
    println!("issue policy        CPI");
    for policy in [
        FpIssuePolicy::InOrderComplete,
        FpIssuePolicy::OutOfOrderSingle,
        FpIssuePolicy::OutOfOrderDual,
    ] {
        let mut cfg = MachineModel::Baseline.config(IssueWidth::Dual, LatencyModel::Fixed(17));
        cfg.fpu.issue_policy = policy;
        let mut sim = Simulator::new(&cfg);
        workload.run_traced(|op| sim.feed(op)).expect("kernel runs");
        println!("{:<18} {:.3}", policy.to_string(), sim.finish().cpi());
    }

    // 2. Latency/area trade-off (Figure 9 d-e meets Table 2).
    println!("\nadd latency  CPI      add-unit area");
    for lat in 1..=5u32 {
        let mut cfg = MachineModel::Baseline.config(IssueWidth::Dual, LatencyModel::Fixed(17));
        cfg.fpu.issue_policy = FpIssuePolicy::OutOfOrderSingle;
        cfg.fpu.add_latency = lat;
        let mut sim = Simulator::new(&cfg);
        workload.run_traced(|op| sim.feed(op)).expect("kernel runs");
        println!(
            "{:<12} {:.3}    {}",
            lat,
            sim.finish().cpi(),
            add_unit_cost(lat)
        );
    }

    println!("\nmul latency  CPI      mul-unit area");
    for lat in 1..=5u32 {
        let mut cfg = MachineModel::Baseline.config(IssueWidth::Dual, LatencyModel::Fixed(17));
        cfg.fpu.issue_policy = FpIssuePolicy::OutOfOrderSingle;
        cfg.fpu.mul_latency = lat;
        let mut sim = Simulator::new(&cfg);
        workload.run_traced(|op| sim.feed(op)).expect("kernel runs");
        println!(
            "{:<12} {:.3}    {}",
            lat,
            sim.finish().cpi(),
            multiply_unit_cost(lat)
        );
    }

    let recommended = MachineModel::Baseline.config(IssueWidth::Dual, LatencyModel::Fixed(17));
    println!(
        "\nthe recommended FPU of Section 5.11 costs {} — the latency knobs\n\
         buy area with only a modest CPI price, which is the paper's point.",
        fpu_cost(&recommended.fpu)
    );
}
