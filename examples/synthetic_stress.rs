//! Controlled-experiment harness: the statistical trace generator lets
//! you isolate a single mechanism. Here: how the miss-level parallelism
//! exposed by MSHRs interacts with the fraction of random (unprefetchable)
//! misses.
//!
//! ```text
//! cargo run --release --example synthetic_stress
//! ```

use aurora3::core::{simulate, IssueWidth, MachineModel};
use aurora3::mem::LatencyModel;
use aurora3::workloads::synthetic::SyntheticConfig;

fn main() {
    println!("rows: sequential-access probability; columns: MSHR count\n");
    print!("{:>6}", "seq%");
    for mshrs in 1..=4 {
        print!(" {:>8}", format!("{mshrs} MSHR"));
    }
    println!();

    for seq in [0.0, 0.25, 0.5, 0.75, 1.0] {
        print!("{:>6}", format!("{:.0}", seq * 100.0));
        for mshrs in 1..=4usize {
            let trace = SyntheticConfig {
                instructions: 200_000,
                load_fraction: 0.30,
                store_fraction: 0.10,
                branch_fraction: 0.10,
                data_working_set: 512 * 1024, // far beyond the 16 KB cache
                sequential_data_prob: seq,
                seed: 42,
                ..Default::default()
            };
            let mut cfg = MachineModel::Small.config(IssueWidth::Single, LatencyModel::Fixed(17));
            cfg.mshr_entries = mshrs;
            let stats = simulate(&cfg, trace.generate());
            print!(" {:>8.3}", stats.cpi());
        }
        println!();
    }

    println!("\nTwo effects overlay: more MSHRs overlap the random misses");
    println!("(left columns, every row), while the stream buffers erase the");
    println!("sequential ones (bottom rows) — the paper's Figures 5 and 7 in");
    println!("one synthetic experiment.");
}
