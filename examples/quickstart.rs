//! Quickstart: assemble a small program, run it functionally, and measure
//! it on the paper's baseline machine.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use aurora3::core::{simulate_program, IssueWidth, MachineModel};
use aurora3::isa::{Assembler, Emulator, Reg};
use aurora3::mem::LatencyModel;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A tiny kernel: sum an array of 64 words.
    let program = Assembler::new().assemble(
        r#"
        .data
        numbers: .word 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16
                 .word 17, 18, 19, 20, 21, 22, 23, 24, 25, 26, 27, 28, 29, 30, 31, 32
                 .word 33, 34, 35, 36, 37, 38, 39, 40, 41, 42, 43, 44, 45, 46, 47, 48
                 .word 49, 50, 51, 52, 53, 54, 55, 56, 57, 58, 59, 60, 61, 62, 63, 64
        .text
        main:
            la   $s0, numbers
            li   $s1, 64
            li   $v0, 0
        loop:
            lw   $t0, 0($s0)
            addu $v0, $v0, $t0
            addiu $s0, $s0, 4
            addiu $s1, $s1, -1
            bgtz $s1, loop
            nop
            break
        "#,
    )?;

    // 1. Functional execution: check the answer.
    let mut emu = Emulator::new(&program);
    emu.run(100_000)?;
    println!("sum(1..=64) = {} (expected 2080)", emu.reg(Reg::V0));
    assert_eq!(emu.reg(Reg::V0), 2080);

    // 2. Cycle-level simulation on the paper's three machine models.
    println!("\n{:<10} {:>8} {:>8}", "model", "cycles", "CPI");
    for model in MachineModel::ALL {
        let cfg = model.config(IssueWidth::Dual, LatencyModel::Fixed(17));
        let stats = simulate_program(&cfg, &program, 100_000)?;
        println!(
            "{:<10} {:>8} {:>8.3}",
            model.to_string(),
            stats.cycles,
            stats.cpi()
        );
    }
    Ok(())
}
