//! Design-space exploration: reproduce the paper's core methodology on a
//! single workload — sweep resource allocations, price each configuration
//! with the RBE cost model, and find the efficient frontier.
//!
//! ```text
//! cargo run --release --example design_space
//! ```

use aurora3::core::{IssueWidth, MachineModel, Simulator};
use aurora3::cost::ipu_cost;
use aurora3::mem::LatencyModel;
use aurora3::workloads::{IntBenchmark, Scale};

fn main() {
    let workload = IntBenchmark::Compress.workload(Scale::Test);
    println!("workload: {workload}\n");

    let mut points = Vec::new();
    for model in MachineModel::ALL {
        for issue in [IssueWidth::Single, IssueWidth::Dual] {
            for mshrs in [1usize, 2, 4] {
                let mut cfg = model.config(issue, LatencyModel::Fixed(17));
                cfg.mshr_entries = mshrs;
                let mut sim = Simulator::new(&cfg);
                workload.run_traced(|op| sim.feed(op)).expect("kernel runs");
                let stats = sim.finish();
                points.push((
                    format!("{model}/{issue}/mshr{mshrs}"),
                    ipu_cost(&cfg),
                    stats.cpi(),
                ));
            }
        }
    }
    points.sort_by_key(|a| a.1);

    println!(
        "{:<26} {:>10} {:>8}  frontier?",
        "config", "cost RBE", "CPI"
    );
    let mut best_cpi = f64::INFINITY;
    for (name, cost, cpi) in &points {
        // A point is on the efficient frontier if nothing cheaper beats it.
        let frontier = *cpi < best_cpi;
        if frontier {
            best_cpi = *cpi;
        }
        println!(
            "{:<26} {:>10} {:>8.3}  {}",
            name,
            cost.0,
            cpi,
            if frontier { "<== frontier" } else { "" }
        );
    }
    println!("\nThe paper's recommendations fall out of exactly this exercise:");
    println!("extra MSHRs are nearly free and always help; dual issue only");
    println!("pays when the memory system can feed it (Section 5.6).");
}
