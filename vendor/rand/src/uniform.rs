//! Uniform range sampling, algorithm-compatible with rand 0.8.5.
//!
//! Integers use the widening-multiply rejection method (`wmul` + zone);
//! floats use the `[1, 2)` mantissa construction. Small integer types
//! widen to `u32` exactly as rand does, so sampled streams match the
//! real crate bit for bit.

use std::ops::{Range, RangeInclusive};

use crate::RngCore;

/// Types that can be sampled uniformly from a range.
pub trait SampleUniform: Sized {
    /// Samples from the half-open range `[low, high)`.
    fn sample_single<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
    /// Samples from the closed range `[low, high]`.
    fn sample_single_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
}

/// Range-like arguments accepted by `Rng::gen_range`.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_single(self.start, self.end, rng)
    }
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (low, high) = self.into_inner();
        assert!(low <= high, "gen_range: empty range");
        T::sample_single_inclusive(low, high, rng)
    }
}

/// Widening multiply helpers: `(hi, lo)` halves of the double-width
/// product, as rand's `WideningMultiply`.
trait WMul: Copy {
    fn wmul(self, other: Self) -> (Self, Self);
}

impl WMul for u32 {
    #[inline]
    fn wmul(self, other: u32) -> (u32, u32) {
        let t = u64::from(self) * u64::from(other);
        ((t >> 32) as u32, t as u32)
    }
}

impl WMul for u64 {
    #[inline]
    fn wmul(self, other: u64) -> (u64, u64) {
        let t = u128::from(self) * u128::from(other);
        ((t >> 64) as u64, t as u64)
    }
}

macro_rules! uniform_int_impl {
    ($ty:ty, $large:ty, $next:ident, $use_mod_zone:expr) => {
        impl SampleUniform for $ty {
            fn sample_single<R: RngCore + ?Sized>(low: $ty, high: $ty, rng: &mut R) -> $ty {
                let range = high.wrapping_sub(low) as $large;
                let zone: $large = if $use_mod_zone {
                    // Small types (widened to u32): exact modulo zone.
                    let max = <$large>::MAX;
                    let ints_to_reject = (max - range + 1) % range;
                    max - ints_to_reject
                } else {
                    (range << range.leading_zeros()).wrapping_sub(1)
                };
                loop {
                    let v: $large = rng.$next() as $large;
                    let (hi, lo) = v.wmul(range);
                    if lo <= zone {
                        return low.wrapping_add(hi as $ty);
                    }
                }
            }

            fn sample_single_inclusive<R: RngCore + ?Sized>(
                low: $ty,
                high: $ty,
                rng: &mut R,
            ) -> $ty {
                // The wrap to zero for a whole-domain range must happen at
                // the native width (rand widens only after the +1).
                let range = high.wrapping_sub(low).wrapping_add(1) as $large;
                if range == 0 {
                    // The whole domain: any draw is uniform.
                    return rng.$next() as $ty;
                }
                let zone: $large = if $use_mod_zone {
                    let max = <$large>::MAX;
                    let ints_to_reject = (max - range + 1) % range;
                    max - ints_to_reject
                } else {
                    (range << range.leading_zeros()).wrapping_sub(1)
                };
                loop {
                    let v: $large = rng.$next() as $large;
                    let (hi, lo) = v.wmul(range);
                    if lo <= zone {
                        return low.wrapping_add(hi as $ty);
                    }
                }
            }
        }
    };
}

uniform_int_impl!(u8, u32, next_u32, true);
uniform_int_impl!(u16, u32, next_u32, true);
uniform_int_impl!(u32, u32, next_u32, false);
uniform_int_impl!(u64, u64, next_u64, false);
uniform_int_impl!(usize, u64, next_u64, false);

// Signed types sample via the equal-width unsigned offset from `low`,
// exactly as rand's `UniformInt` does.
macro_rules! uniform_signed_impl {
    ($ty:ty, $uty:ty) => {
        impl SampleUniform for $ty {
            fn sample_single<R: RngCore + ?Sized>(low: $ty, high: $ty, rng: &mut R) -> $ty {
                let offset = <$uty>::sample_single(0, high.wrapping_sub(low) as $uty, rng);
                low.wrapping_add(offset as $ty)
            }

            fn sample_single_inclusive<R: RngCore + ?Sized>(
                low: $ty,
                high: $ty,
                rng: &mut R,
            ) -> $ty {
                if low == <$ty>::MIN && high == <$ty>::MAX {
                    return <$uty>::sample_single_inclusive(0, <$uty>::MAX, rng) as $ty;
                }
                let offset =
                    <$uty>::sample_single_inclusive(0, high.wrapping_sub(low) as $uty, rng);
                low.wrapping_add(offset as $ty)
            }
        }
    };
}

uniform_signed_impl!(i8, u8);
uniform_signed_impl!(i16, u16);
uniform_signed_impl!(i32, u32);
uniform_signed_impl!(i64, u64);
uniform_signed_impl!(isize, usize);

macro_rules! uniform_float_impl {
    ($ty:ty, $uty:ty, $next:ident, $bits_to_discard:expr, $exponent_bias_bits:expr) => {
        impl SampleUniform for $ty {
            fn sample_single<R: RngCore + ?Sized>(low: $ty, high: $ty, rng: &mut R) -> $ty {
                let scale = high - low;
                // A value in [1, 2) from the raw mantissa, then shift down.
                let value1_2 =
                    <$ty>::from_bits($exponent_bias_bits | (rng.$next() >> $bits_to_discard));
                let value0_1 = value1_2 - 1.0;
                value0_1 * scale + low
            }

            fn sample_single_inclusive<R: RngCore + ?Sized>(
                low: $ty,
                high: $ty,
                rng: &mut R,
            ) -> $ty {
                // rand treats inclusive float ranges the same way.
                Self::sample_single(low, high, rng)
            }
        }
    };
}

uniform_float_impl!(f64, u64, next_u64, 12u32, 1023u64 << 52);
uniform_float_impl!(f32, u32, next_u32, 9u32, 127u32 << 23);

#[cfg(test)]
mod tests {
    use crate::rngs::SmallRng;
    use crate::{Rng, SeedableRng};

    #[test]
    fn full_u8_inclusive_range_does_not_loop() {
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..100 {
            let _: u8 = rng.gen_range(0..=u8::MAX);
        }
    }

    #[test]
    fn small_ranges_cover_all_values() {
        let mut rng = SmallRng::seed_from_u64(11);
        let mut seen = [false; 6];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..6)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = SmallRng::seed_from_u64(0);
        let _: u32 = rng.gen_range(5..5);
    }
}
