//! Offline drop-in subset of the [`rand` 0.8](https://docs.rs/rand/0.8)
//! API.
//!
//! The build environment for this repository has no network access and no
//! cargo registry cache, so the real `rand` crate cannot be downloaded.
//! This vendored stub supplies the slice of the API the workspace uses:
//!
//! * [`rngs::SmallRng`] — xoshiro256++, bit-compatible with rand 0.8.5's
//!   `SmallRng` on 64-bit targets (same `seed_from_u64` expansion, same
//!   output stream),
//! * [`SeedableRng::seed_from_u64`],
//! * [`Rng::gen`], [`Rng::gen_bool`] and [`Rng::gen_range`] with the same
//!   sampling algorithms as rand 0.8.5 (widening-multiply rejection for
//!   integers, the `[1, 2)` mantissa trick for floats, 64-bit fixed-point
//!   Bernoulli),
//!
//! so seeded random streams — and everything derived from them, such as
//! workload data sections and golden cycle counts — are identical to what
//! the real crate produces.

pub mod rngs;

mod uniform;

pub use uniform::{SampleRange, SampleUniform};

/// The core of a random number generator: raw 32- and 64-bit draws.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let last = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&last[..rem.len()]);
        }
    }
}

/// A generator that can be instantiated from a fixed seed.
pub trait SeedableRng: Sized {
    /// The seed array type.
    type Seed: Default + AsMut<[u8]>;

    /// Creates a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64` seed, expanding it with SplitMix64
    /// exactly as rand 0.8 does.
    fn seed_from_u64(mut state: u64) -> Self {
        const PHI: u64 = 0x9e37_79b9_7f4a_7c15;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(PHI);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// A distribution that can be sampled with any generator.
pub trait Distribution<T> {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// The standard distribution: uniform over a type's whole domain (and
/// `[0, 1)` for floats), matching rand 0.8's `Standard`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

impl Distribution<u32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Distribution<u64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Distribution<usize> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

impl Distribution<u8> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u8 {
        rng.next_u32() as u8
    }
}

impl Distribution<u16> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u16 {
        rng.next_u32() as u16
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        // rand 0.8 sign-tests the most significant bit of a u32 draw.
        (rng.next_u32() as i32) < 0
    }
}

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53-bit multiply method, as rand 0.8's float `Standard`.
        let value = rng.next_u64() >> 11;
        value as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        let value = rng.next_u32() >> 8;
        value as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// User-facing sampling methods, mirroring rand 0.8's `Rng` extension
/// trait. Blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value from the [`Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Draws a value uniformly from `range` (half-open or inclusive).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`, using rand 0.8's 64-bit
    /// fixed-point Bernoulli comparison.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} out of range");
        if p >= 1.0 {
            return true;
        }
        const SCALE: f64 = 2.0 * (1u64 << 63) as f64;
        let p_int = (p * SCALE) as u64;
        self.next_u64() < p_int
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SmallRng;

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: u32 = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w: u8 = rng.gen_range(3..=5);
            assert!((3..=5).contains(&w));
            let f: f64 = rng.gen_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(1);
        assert!(rng.gen_bool(1.0));
        assert!(!rng.gen_bool(0.0));
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4000..6000).contains(&heads));
    }

    #[test]
    fn standard_f64_is_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
