//! Small, fast generators — here, just [`SmallRng`].

use crate::{RngCore, SeedableRng};

/// xoshiro256++, the algorithm behind rand 0.8's `SmallRng` on 64-bit
/// platforms. Output is bit-identical to rand 0.8.5 for the same seed,
/// including the `seed_from_u64` SplitMix64 expansion and the truncating
/// `next_u32`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmallRng {
    s: [u64; 4],
}

impl RngCore for SmallRng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        self.next_u64() as u32
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SmallRng {
    /// Returns the raw xoshiro256++ state, for checkpointing.
    #[inline]
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuilds a generator from a state captured by [`SmallRng::state`].
    ///
    /// The all-zero state is a fixed point of xoshiro256++ and is remapped
    /// the same way [`SeedableRng::from_seed`] remaps the all-zero seed, so
    /// a round-tripped generator always continues the original stream.
    #[inline]
    pub fn from_state(s: [u64; 4]) -> SmallRng {
        if s == [0; 4] {
            return SmallRng::seed_from_u64(0);
        }
        SmallRng { s }
    }
}

impl SeedableRng for SmallRng {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> SmallRng {
        if seed.iter().all(|&b| b == 0) {
            return SmallRng::seed_from_u64(0);
        }
        let mut s = [0u64; 4];
        for (word, chunk) in s.iter_mut().zip(seed.chunks_exact(8)) {
            *word = u64::from_le_bytes(chunk.try_into().unwrap());
        }
        SmallRng { s }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_stream_from_raw_state() {
        // xoshiro256++ reference vector: state {1, 2, 3, 4} produces these
        // first outputs (from the upstream xoshiro test suite).
        let mut rng = SmallRng { s: [1, 2, 3, 4] };
        let expected: [u64; 6] = [
            41943041,
            58720359,
            3588806011781223,
            3591011842654386,
            9228616714210784205,
            9973669472204895162,
        ];
        for e in expected {
            assert_eq!(rng.next_u64(), e);
        }
    }

    #[test]
    fn state_round_trip_continues_stream() {
        let mut a = SmallRng::seed_from_u64(42);
        let _ = a.next_u64();
        let mut b = SmallRng::from_state(a.state());
        for _ in 0..8 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn zero_seed_is_remapped() {
        let z = SmallRng::from_seed([0; 32]);
        let s = SmallRng::seed_from_u64(0);
        assert_eq!(z, s);
    }
}
