//! Offline drop-in subset of the [criterion](https://docs.rs/criterion)
//! benchmarking API.
//!
//! The build environment for this repository has no network access, so
//! this vendored stub supplies the API surface the workspace's benches
//! use: [`Criterion`], [`BenchmarkGroup`], [`Bencher::iter`] /
//! [`Bencher::iter_batched`], [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros. Measurement is a
//! plain wall-clock sampling loop: each sample times a batch of
//! iterations, and the per-iteration mean and minimum are printed as
//! text. There are no statistics, plots, or baselines — just honest
//! numbers, fully offline.

use std::time::{Duration, Instant};

/// An opaque-to-the-optimiser identity function.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` amortises setup cost. The stub times every routine
/// invocation individually, so the variants only influence batch size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: many per batch.
    SmallInput,
    /// Large inputs: one per batch.
    LargeInput,
    /// Exactly one input per measured iteration.
    PerIteration,
}

/// The benchmark driver: holds global settings and prints results.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 50 }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.sample_size;
        run_one(&id.into(), sample_size, f);
        self
    }
}

/// A named collection of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Times one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, id.into()), self.sample_size, f);
        self
    }

    /// Ends the group (output is already printed; nothing to flush).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, mut f: F) {
    let mut bencher = Bencher {
        samples: Vec::new(),
        iters_per_sample: 1,
        sample_size,
    };
    // Warm-up & auto-calibration pass.
    f(&mut bencher);
    let (mean, min, iters) = bencher.summarise();
    println!(
        "{label:<40} mean {:>12} min {:>12} ({iters} iters)",
        fmt_ns(mean),
        fmt_ns(min),
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Passed to the benchmark closure; routes the measured routine through
/// the timing loop.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine`, running it enough times for stable samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate: aim for samples of at least ~1ms or 1 iteration,
        // whichever is larger.
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(20));
        let per_sample = (Duration::from_millis(1).as_nanos() / once.as_nanos()).max(1) as u64;
        self.iters_per_sample = per_sample;
        self.samples.clear();
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..per_sample {
                black_box(routine());
            }
            self.samples.push(t.elapsed());
        }
    }

    /// Times `routine` over inputs built by `setup`; setup time is
    /// excluded from measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        self.iters_per_sample = 1;
        self.samples.clear();
        for _ in 0..self.sample_size {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            self.samples.push(t.elapsed());
        }
    }

    fn summarise(&self) -> (f64, f64, u64) {
        let n = self.samples.len().max(1) as f64;
        let iters = self.iters_per_sample.max(1) as f64;
        let total: f64 = self.samples.iter().map(|d| d.as_nanos() as f64).sum();
        let min = self
            .samples
            .iter()
            .map(|d| d.as_nanos() as f64)
            .fold(f64::INFINITY, f64::min);
        let min = if min.is_finite() { min } else { 0.0 };
        (
            total / n / iters,
            min / iters,
            self.iters_per_sample * self.samples.len() as u64,
        )
    }
}

/// Declares a benchmark group function, supporting both criterion forms:
/// `criterion_group!(name, target, ...)` and
/// `criterion_group!(name = n; config = expr; targets = t, ...)`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(c: &mut Criterion) {
        let mut g = c.benchmark_group("g");
        g.sample_size(3);
        g.bench_function("iter", |b| b.iter(|| black_box(1u64 + 1)));
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::LargeInput)
        });
        g.finish();
    }

    criterion_group!(
        name = named_form;
        config = Criterion::default().sample_size(3);
        targets = quick
    );
    criterion_group!(positional_form, quick);

    #[test]
    fn groups_run() {
        named_form();
        positional_form();
    }
}
