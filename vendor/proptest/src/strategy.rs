//! Value-generation strategies: ranges, `any`, tuples, `Just`, `prop_map`.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use rand::rngs::SmallRng;
use rand::{Rng, SampleUniform};

/// Something that can produce values for a property test.
///
/// Unlike real proptest there is no value tree or shrinking: a strategy
/// simply samples one value per case from the deterministic test RNG.
pub trait Strategy {
    /// The type of the generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut SmallRng) -> Self::Value;

    /// Maps generated values through `f`, like proptest's `prop_map`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone, Copy)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut SmallRng) -> T {
        self.0.clone()
    }
}

/// The [`Strategy::prop_map`] adapter.
#[derive(Debug, Clone, Copy)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample(&self, rng: &mut SmallRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

impl<T> Strategy for Range<T>
where
    T: SampleUniform + PartialOrd + Copy,
{
    type Value = T;

    fn sample(&self, rng: &mut SmallRng) -> T {
        rng.gen_range(self.start..self.end)
    }
}

impl<T> Strategy for RangeInclusive<T>
where
    T: SampleUniform + PartialOrd + Copy,
{
    type Value = T;

    fn sample(&self, rng: &mut SmallRng) -> T {
        rng.gen_range(*self.start()..=*self.end())
    }
}

/// Uniform whole-domain strategy returned by [`any`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T>(PhantomData<fn() -> T>);

/// A strategy over a type's whole domain, like proptest's `any::<T>()`.
pub fn any<T>() -> Any<T>
where
    Any<T>: Strategy<Value = T>,
{
    Any(PhantomData)
}

macro_rules! any_uint_impl {
    ($($ty:ty),+) => {
        $(
            impl Strategy for Any<$ty> {
                type Value = $ty;

                fn sample(&self, rng: &mut SmallRng) -> $ty {
                    rng.gen_range(<$ty>::MIN..=<$ty>::MAX)
                }
            }
        )+
    };
}

any_uint_impl!(u8, u16, u32, u64, usize);

macro_rules! any_int_impl {
    ($($ty:ty => $uty:ty),+) => {
        $(
            impl Strategy for Any<$ty> {
                type Value = $ty;

                fn sample(&self, rng: &mut SmallRng) -> $ty {
                    rng.gen_range(<$uty>::MIN..=<$uty>::MAX) as $ty
                }
            }
        )+
    };
}

any_int_impl!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl Strategy for Any<bool> {
    type Value = bool;

    fn sample(&self, rng: &mut SmallRng) -> bool {
        rng.gen()
    }
}

macro_rules! tuple_strategy_impl {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut SmallRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

tuple_strategy_impl!(A);
tuple_strategy_impl!(A, B);
tuple_strategy_impl!(A, B, C);
tuple_strategy_impl!(A, B, C, D);
tuple_strategy_impl!(A, B, C, D, E);
tuple_strategy_impl!(A, B, C, D, E, F);
