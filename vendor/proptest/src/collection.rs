//! Collection strategies — here, just `vec`.

use std::ops::{Range, RangeInclusive};

use rand::rngs::SmallRng;
use rand::Rng;

use crate::strategy::Strategy;

/// A length specification for [`vec`], convertible from ranges and exact
/// sizes like proptest's `SizeRange`.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    /// Inclusive upper bound.
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { min: n, max: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "vec strategy: empty size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        assert!(r.start() <= r.end(), "vec strategy: empty size range");
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

/// Strategy for `Vec<T>` with a length drawn from `size`.
#[derive(Debug, Clone, Copy)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut SmallRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.min..=self.size.max);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

/// Generates vectors whose elements come from `element` and whose length
/// falls in `size`, like `proptest::collection::vec`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}
