//! Offline drop-in subset of the [proptest](https://docs.rs/proptest) API.
//!
//! The build environment for this repository has no network access, so
//! this vendored stub supplies the slice of proptest the workspace's
//! tests use:
//!
//! * the [`proptest!`] macro (with optional `#![proptest_config(...)]`),
//! * strategies: integer/float ranges, [`any`], tuples, [`Just`],
//!   [`collection::vec`], and [`Strategy::prop_map`],
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`].
//!
//! Semantics differ from real proptest in two deliberate ways: sampling
//! is deterministic (seeded from the test's module path and name, so runs
//! are reproducible without a `proptest-regressions` directory), and
//! failing cases panic immediately without shrinking.

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub use strategy::{any, Just, Strategy};
pub use test_runner::Config;

/// What `use proptest::prelude::*` is expected to bring into scope.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Builds the deterministic per-test generator used by [`proptest!`].
/// Seeded by FNV-1a of the fully qualified test name so each property
/// gets an independent but reproducible stream.
#[doc(hidden)]
pub fn rng_for(test_path: &str) -> SmallRng {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_path.bytes() {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    SmallRng::seed_from_u64(hash)
}

/// Runs `cases` sampled executions of a property body. Mirrors real
/// proptest's `proptest!` block syntax, including an optional leading
/// `#![proptest_config(...)]` attribute and multiple `fn` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($config); $($rest)*);
    };
    (@run ($config:expr); $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::Config = $config;
                let mut prop_rng =
                    $crate::rng_for(concat!(module_path!(), "::", stringify!($name)));
                for _case in 0..config.cases {
                    $(
                        let $arg = $crate::Strategy::sample(&$strategy, &mut prop_rng);
                    )+
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::Config::default()); $($rest)*);
    };
}

/// Asserts a condition inside a property (panics immediately; no
/// shrinking in this stub).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Doc comments and plain attributes both pass through.
        #[test]
        fn addition_commutes(a in 0u32..1000, b in 0u32..1000) {
            prop_assert_eq!(a + b, b + a);
        }

        #[test]
        fn ranges_are_respected(x in 10u8..20, y in any::<u64>(), f in 0.5f64..1.5) {
            prop_assert!((10..20).contains(&x));
            let _ = y;
            prop_assert!((0.5..1.5).contains(&f));
        }
    }

    proptest! {
        #[test]
        fn vec_and_tuple_strategies(
            v in crate::collection::vec((any::<bool>(), 0u64..100), 1..20),
            mapped in (0u64..1000).prop_map(|a| a & !3),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 20);
            for (_, n) in &v {
                prop_assert!(*n < 100);
            }
            prop_assert_eq!(mapped % 4, 0);
        }
    }

    #[test]
    fn rng_is_deterministic_per_name() {
        use rand::RngCore;
        let mut a = crate::rng_for("some::test");
        let mut b = crate::rng_for("some::test");
        let mut c = crate::rng_for("other::test");
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
