//! Test-runner configuration (`ProptestConfig` in the prelude).

/// How many cases [`crate::proptest!`] runs per property. Matches the
/// field real proptest configs are built with via `with_cases`.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Number of sampled executions per property.
    pub cases: u32,
}

impl Default for Config {
    fn default() -> Config {
        // Real proptest's default.
        Config { cases: 256 }
    }
}

impl Config {
    /// A config running `cases` executions per property.
    pub fn with_cases(cases: u32) -> Config {
        Config { cases }
    }
}
