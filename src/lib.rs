//! # aurora3 — the Aurora III resource-allocation study, reproduced in Rust
//!
//! This umbrella crate re-exports the public API of the reproduction of
//! *Resource Allocation in a High Clock Rate Microprocessor* (Upton,
//! Huff, Mudge & Brown, ASPLOS 1994):
//!
//! * [`isa`] — mini-MIPS instruction set, assembler, functional emulator
//!   and the dynamic trace format,
//! * [`mem`] — caches, stream buffers, write cache, MSHRs and the BIU,
//! * [`core`] — machine configurations and the cycle-level simulator,
//! * [`workloads`] — SPEC92-like kernels and synthetic trace generation,
//! * [`cost`] — the register-bit-equivalent (RBE) area model of Table 2.
//!
//! See `README.md` for a guided tour, `DESIGN.md` for the system
//! inventory, and `EXPERIMENTS.md` for paper-vs-measured results.
//!
//! # Quick start
//!
//! ```
//! use aurora3::core::{simulate, IssueWidth, MachineModel};
//! use aurora3::mem::LatencyModel;
//! use aurora3::workloads::{IntBenchmark, Scale};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let workload = IntBenchmark::Compress.workload(Scale::Test);
//! let trace = workload.trace()?;
//! let cfg = MachineModel::Baseline.config(IssueWidth::Dual, LatencyModel::Fixed(17));
//! let stats = simulate(&cfg, trace.ops);
//! println!("{}: CPI {:.3}", workload.name(), stats.cpi());
//! # Ok(())
//! # }
//! ```

pub use aurora_core as core;
pub use aurora_cost as cost;
pub use aurora_isa as isa;
pub use aurora_mem as mem;
pub use aurora_workloads as workloads;
